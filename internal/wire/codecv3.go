package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// Wire codec v3 (see DESIGN.md §10): a length-delimited binary encoding
// for the hot envelope types. The frame layout is unchanged — 4-byte
// big-endian length prefix — but the body starts with the magic byte
// 0xB3 instead of '{', so a FrameReader distinguishes v3 and JSON
// bodies per frame with no out-of-band state. JSON remains the wire
// default and the permanent fallback: every decoder accepts both, and
// a sender only emits v3 after the peer has shown it can decode it
// (see internal/transport codec negotiation).
//
// Values that the tagged Args encoding cannot represent natively fall
// back to an embedded JSON blob, so v3 is semantically lossless with
// respect to the JSON codec for anything the JSON codec can carry.

// magicV3 is the first body byte of a v3-encoded frame. A JSON body
// always starts with '{' (0x7B), so the two are unambiguous.
const magicV3 = 0xB3

// Codec selects the frame body encoding a sender uses.
type Codec uint8

// Codecs.
const (
	CodecJSON Codec = iota // JSON body — wire default, universal fallback
	CodecV3                // binary v3 body — negotiated per connection
)

// String returns the flag-friendly codec name.
func (c Codec) String() string {
	if c == CodecV3 {
		return "v3"
	}
	return "json"
}

// ParseCodec parses a -wire-codec flag value.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "json":
		return CodecJSON, nil
	case "v3":
		return CodecV3, nil
	}
	return CodecJSON, fmt.Errorf("wire: unknown codec %q (want json or v3)", s)
}

// MetaWireCodec is the metadata key a client stamps on requests to
// advertise that it decodes v3 frames. A v3-capable server that sees
// the advertisement may answer in v3 immediately; the binary response
// itself is the client's evidence that the server speaks v3.
const MetaWireCodec = "wire-codec"

// WireCodecV3 is the MetaWireCodec value advertising v3 support.
const WireCodecV3 = "v3"

// ErrBadV3Frame reports a structurally invalid v3 body.
var ErrBadV3Frame = errors.New("wire: malformed v3 frame")

// v3 kind bytes.
const (
	v3KindRequest  = 1
	v3KindResponse = 2
	v3KindEvent    = 3
)

// v3 value tags for the Args encoding.
const (
	v3ValNil     = 0
	v3ValString  = 1
	v3ValFloat64 = 2
	v3ValInt     = 3 // zigzag varint; covers int/int64
	v3ValTrue    = 4
	v3ValFalse   = 5
	v3ValStrings = 6 // []string
	v3ValSlice   = 7 // []any
	v3ValMap     = 8 // map[string]any / Args
	v3ValJSON    = 9 // embedded JSON blob (fallback for everything else)
)

// EncodeFrameCodec encodes env with the requested codec into a pooled
// FrameBuffer. CodecJSON delegates to EncodeFrame; the two produce
// frames any FrameReader decodes interchangeably.
func EncodeFrameCodec(env *Envelope, c Codec) (*FrameBuffer, error) {
	if c == CodecV3 {
		return EncodeFrameV3(env)
	}
	return EncodeFrame(env)
}

// EncodeFrameV3 encodes env as a v3 binary frame: 4-byte length prefix
// then the 0xB3-tagged body, appended into one pooled buffer so a warm
// pool encodes a frame with zero intermediate allocations and the
// transport issues a single Write.
func EncodeFrameV3(env *Envelope) (*FrameBuffer, error) {
	f := framePool.Get().(*FrameBuffer)
	b := append(f.buf[:0], 0, 0, 0, 0) // length backpatched below
	var err error
	switch {
	case env.Kind == KindRequest && env.Request != nil:
		b = append(b, magicV3, v3KindRequest)
		b, err = appendV3Request(b, env.Request)
	case env.Kind == KindResponse && env.Response != nil:
		b = append(b, magicV3, v3KindResponse)
		b, err = appendV3Response(b, env.Response)
	case env.Kind == KindEvent && env.Event != nil:
		b = append(b, magicV3, v3KindEvent)
		b, err = appendV3Event(b, env.Event)
	default:
		err = fmt.Errorf("wire: v3 encode: empty or inconsistent envelope kind %q", env.Kind)
	}
	if err != nil {
		f.buf = b
		f.Release()
		return nil, err
	}
	n := len(b) - 4
	if n > MaxFrameSize {
		f.buf = b
		f.Release()
		return nil, ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	f.buf = b
	return f, nil
}

func appendV3Request(b []byte, r *Request) ([]byte, error) {
	b = binary.AppendUvarint(b, r.ID)
	b = appendV3String(b, r.Service)
	b = appendV3String(b, r.Method)
	b = appendV3String(b, r.Caller)
	b = appendV3String(b, r.Credential)
	b = appendV3Meta(b, r.Meta)
	return appendV3Args(b, r.Args)
}

func appendV3Response(b []byte, r *Response) ([]byte, error) {
	b = binary.AppendUvarint(b, r.ID)
	if r.OK {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendV3String(b, r.Error)
	b = appendV3String(b, string(r.Code))
	b = appendV3Bytes(b, r.Result)
	b = appendV3Meta(b, r.Meta)
	return b, nil
}

func appendV3Event(b []byte, e *Event) ([]byte, error) {
	b = appendV3String(b, e.Name)
	b = appendV3String(b, e.Source)
	return appendV3Args(b, e.Args)
}

func appendV3String(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendV3Bytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendV3Meta(b []byte, m Metadata) []byte {
	b = binary.AppendUvarint(b, uint64(len(m)))
	for k, v := range m {
		b = appendV3String(b, k)
		b = appendV3String(b, v)
	}
	return b
}

func appendV3Args(b []byte, a map[string]any) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(a)))
	var err error
	for k, v := range a {
		b = appendV3String(b, k)
		b, err = appendV3Value(b, v)
		if err != nil {
			return b, err
		}
	}
	return b, nil
}

// appendV3Value encodes one Args value with a type tag. The calendar
// services overwhelmingly send small scalar maps (entity names,
// actions, ints, nested string maps), so those get dedicated tags; any
// other type round-trips through an embedded JSON blob with identical
// decode semantics to the JSON codec.
func appendV3Value(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, v3ValNil), nil
	case string:
		b = append(b, v3ValString)
		return appendV3String(b, x), nil
	case float64:
		b = append(b, v3ValFloat64)
		return binary.BigEndian.AppendUint64(b, math.Float64bits(x)), nil
	case int:
		b = append(b, v3ValInt)
		return appendV3Zigzag(b, int64(x)), nil
	case int64:
		b = append(b, v3ValInt)
		return appendV3Zigzag(b, x), nil
	case bool:
		if x {
			return append(b, v3ValTrue), nil
		}
		return append(b, v3ValFalse), nil
	case []string:
		b = append(b, v3ValStrings)
		b = binary.AppendUvarint(b, uint64(len(x)))
		for _, s := range x {
			b = appendV3String(b, s)
		}
		return b, nil
	case []any:
		b = append(b, v3ValSlice)
		b = binary.AppendUvarint(b, uint64(len(x)))
		var err error
		for _, e := range x {
			b, err = appendV3Value(b, e)
			if err != nil {
				return b, err
			}
		}
		return b, nil
	case map[string]any:
		b = append(b, v3ValMap)
		return appendV3Args(b, x)
	case Args:
		b = append(b, v3ValMap)
		return appendV3Args(b, x)
	case json.RawMessage:
		// Already JSON: embed verbatim, decode matches the JSON codec.
		b = append(b, v3ValJSON)
		return appendV3Bytes(b, x), nil
	default:
		raw, err := json.Marshal(v)
		if err != nil {
			return b, fmt.Errorf("wire: v3 encode arg: %w", err)
		}
		b = append(b, v3ValJSON)
		return appendV3Bytes(b, raw), nil
	}
}

func appendV3Zigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v<<1)^uint64(v>>63))
}

// --- decode ---------------------------------------------------------------

// v3dec is a bounds-checked cursor over one v3 body. Decoded strings
// and byte fields are copied out (the caller reuses the underlying
// scratch buffer for the next frame), but the cursor itself performs no
// intermediate allocation.
type v3dec struct {
	b   []byte
	pos int
}

func (d *v3dec) fail() error { return ErrBadV3Frame }

func (d *v3dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		return 0, d.fail()
	}
	d.pos += n
	return v, nil
}

func (d *v3dec) zigzag() (int64, error) {
	u, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

func (d *v3dec) byte() (byte, error) {
	if d.pos >= len(d.b) {
		return 0, d.fail()
	}
	c := d.b[d.pos]
	d.pos++
	return c, nil
}

// take returns the next n raw bytes, still aliasing the scratch buffer.
func (d *v3dec) take(n uint64) ([]byte, error) {
	if n > uint64(len(d.b)-d.pos) {
		return nil, d.fail()
	}
	p := d.b[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return p, nil
}

func (d *v3dec) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	p, err := d.take(n)
	if err != nil {
		return "", err
	}
	return string(p), nil
}

func (d *v3dec) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	p, err := d.take(n)
	if err != nil {
		return nil, err
	}
	if len(p) == 0 {
		return nil, nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out, nil
}

func (d *v3dec) meta() (Metadata, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(len(d.b)-d.pos) { // each entry takes ≥2 bytes; cheap sanity bound
		return nil, d.fail()
	}
	m := make(Metadata, n)
	for i := uint64(0); i < n; i++ {
		k, err := d.string()
		if err != nil {
			return nil, err
		}
		v, err := d.string()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

func (d *v3dec) args() (Args, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(len(d.b)-d.pos) {
		return nil, d.fail()
	}
	a := make(Args, n)
	for i := uint64(0); i < n; i++ {
		k, err := d.string()
		if err != nil {
			return nil, err
		}
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		a[k] = v
	}
	return a, nil
}

func (d *v3dec) value() (any, error) {
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case v3ValNil:
		return nil, nil
	case v3ValString:
		return d.string()
	case v3ValFloat64:
		p, err := d.take(8)
		if err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.BigEndian.Uint64(p)), nil
	case v3ValInt:
		return d.zigzag()
	case v3ValTrue:
		return true, nil
	case v3ValFalse:
		return false, nil
	case v3ValStrings:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(d.b)-d.pos) {
			return nil, d.fail()
		}
		out := make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			s, err := d.string()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		return out, nil
	case v3ValSlice:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(d.b)-d.pos) {
			return nil, d.fail()
		}
		out := make([]any, 0, n)
		for i := uint64(0); i < n; i++ {
			v, err := d.value()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case v3ValMap:
		a, err := d.args()
		if err != nil {
			return nil, err
		}
		return map[string]any(a), nil
	case v3ValJSON:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		p, err := d.take(n)
		if err != nil {
			return nil, err
		}
		var v any
		if err := json.Unmarshal(p, &v); err != nil {
			return nil, fmt.Errorf("wire: v3 embedded json: %w", err)
		}
		return v, nil
	}
	return nil, d.fail()
}

// decodeV3 decodes a v3 body (including the leading magic byte) into a
// fresh Envelope that does not alias body.
func decodeV3(body []byte) (*Envelope, error) {
	if len(body) < 2 || body[0] != magicV3 {
		return nil, ErrBadV3Frame
	}
	d := &v3dec{b: body, pos: 2}
	env := new(Envelope)
	var err error
	switch body[1] {
	case v3KindRequest:
		env.Kind = KindRequest
		env.Request, err = d.request()
	case v3KindResponse:
		env.Kind = KindResponse
		env.Response, err = d.response()
	case v3KindEvent:
		env.Kind = KindEvent
		env.Event, err = d.event()
	default:
		err = ErrBadV3Frame
	}
	if err != nil {
		return nil, err
	}
	if d.pos != len(d.b) {
		return nil, ErrBadV3Frame
	}
	return env, nil
}

func (d *v3dec) request() (*Request, error) {
	r := new(Request)
	var err error
	if r.ID, err = d.uvarint(); err != nil {
		return nil, err
	}
	if r.Service, err = d.string(); err != nil {
		return nil, err
	}
	if r.Method, err = d.string(); err != nil {
		return nil, err
	}
	if r.Caller, err = d.string(); err != nil {
		return nil, err
	}
	if r.Credential, err = d.string(); err != nil {
		return nil, err
	}
	if r.Meta, err = d.meta(); err != nil {
		return nil, err
	}
	if r.Args, err = d.args(); err != nil {
		return nil, err
	}
	return r, nil
}

func (d *v3dec) response() (*Response, error) {
	r := new(Response)
	var err error
	if r.ID, err = d.uvarint(); err != nil {
		return nil, err
	}
	ok, err := d.byte()
	if err != nil {
		return nil, err
	}
	r.OK = ok != 0
	if r.Error, err = d.string(); err != nil {
		return nil, err
	}
	var code string
	if code, err = d.string(); err != nil {
		return nil, err
	}
	r.Code = ErrCode(code)
	if r.Result, err = d.bytes(); err != nil {
		return nil, err
	}
	if r.Meta, err = d.meta(); err != nil {
		return nil, err
	}
	return r, nil
}

func (d *v3dec) event() (*Event, error) {
	e := new(Event)
	var err error
	if e.Name, err = d.string(); err != nil {
		return nil, err
	}
	if e.Source, err = d.string(); err != nil {
		return nil, err
	}
	if e.Args, err = d.args(); err != nil {
		return nil, err
	}
	return e, nil
}
