// Package proxy implements SyD proxy support (paper §5.2): "if a SyD
// calendar object A is down or disconnected, a proxy takes over the
// place of A. Once A comes back up, A takes over the proxy. The proxy
// and the SyD object act as a single entity for an outsider."
//
// A Host is a proxy server. It registers itself with the directory
// (which assigns proxies to users round-robin) and can adopt users:
// given a snapshot of the device's database, an application-supplied
// Adopter reconstructs the user's services, which the host then serves
// under the user's own service names. The engine's failover path
// (internal/engine) sends traffic for an offline user to its assigned
// proxy automatically, so callers never notice the substitution.
//
// Handback returns the (possibly modified) state to the returning
// device and stops serving.
package proxy

import (
	"context"
	"encoding/base64"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/directory"
	"repro/internal/listener"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ControlServicePrefix prefixes the host's control service name.
const ControlServicePrefix = "proxy."

// ControlService is the well-known alias every host also registers, so
// a device that only knows its proxy's address can reach the control
// surface without learning the proxy's id first.
const ControlService = "proxy.control"

// ControlServiceFor returns the control service name of proxy id.
func ControlServiceFor(id string) string { return ControlServicePrefix + id }

// Adopter reconstructs a user's services from a device snapshot. It
// returns the service objects to serve (keyed by full service name,
// e.g. "cal.phil") and a Checkpoint function producing the current
// snapshot for handback.
type Adopter func(user string, snapshot []byte) (services map[string]*listener.Object, checkpoint func() ([]byte, error), err error)

// HostConfig configures a proxy host.
type HostConfig struct {
	// ID is the proxy's identity in the directory (required).
	ID string
	// Net and DirAddr locate the deployment (required).
	Net     transport.Network
	DirAddr string
	// ListenAddr optionally pins the bind address.
	ListenAddr string
	// Adopter rebuilds services from snapshots (required to adopt).
	Adopter Adopter
	// QueueMethods lists the methods the host may absorb into the
	// per-user update queue when a request names a service it does not
	// host (an offline user it never adopted — an unplanned partition).
	// Only idempotent notification-style updates belong here; two-phase
	// negotiation RPCs must keep failing so the caller's recovery
	// machinery handles them. Empty disables the fallback queue.
	QueueMethods []string
	// UpdateQueueCap bounds each user's update queue (default 64);
	// overflow drops the oldest update and counts it in the
	// proxy_queue_dropped metric.
	UpdateQueueCap int
	// Metrics optionally records queue drops.
	Metrics *metrics.Registry
}

// Update is one queued update addressed to an offline user, replayed by
// the device's reconnect session (DrainUpdates).
type Update struct {
	Service string    `json:"service"`
	Method  string    `json:"method"`
	Args    wire.Args `json:"args,omitempty"`
}

// Host is a running proxy server.
type Host struct {
	id  string
	net transport.Network
	dir *directory.Client
	lis *listener.Listener
	ln  transport.Listener

	adopter Adopter

	queueable map[string]bool
	updCap    int
	met       *metrics.Registry

	mu      sync.Mutex
	adopted map[string]*adoption

	updMu   sync.Mutex
	updates map[string][]Update
	dropped map[string]int64
}

type adoption struct {
	services   []string
	checkpoint func() ([]byte, error)
}

// StartHost boots a proxy host and registers it with the directory.
func StartHost(ctx context.Context, cfg HostConfig) (*Host, error) {
	if cfg.ID == "" || cfg.Net == nil {
		return nil, fmt.Errorf("proxy: ID and Net are required")
	}
	h := &Host{
		id:        cfg.ID,
		net:       cfg.Net,
		adopter:   cfg.Adopter,
		adopted:   make(map[string]*adoption),
		queueable: make(map[string]bool),
		updCap:    cfg.UpdateQueueCap,
		met:       cfg.Metrics,
		updates:   make(map[string][]Update),
		dropped:   make(map[string]int64),
	}
	if h.updCap <= 0 {
		h.updCap = 64
	}
	for _, m := range cfg.QueueMethods {
		h.queueable[m] = true
	}
	h.lis = listener.New(cfg.ID, nil)
	addr := cfg.ListenAddr
	if addr == "" {
		addr = "proxy-" + cfg.ID
	}
	ln, err := cfg.Net.Listen(addr, h.lis)
	if err != nil {
		ln, err = cfg.Net.Listen(":0", h.lis)
		if err != nil {
			return nil, fmt.Errorf("proxy: listen: %w", err)
		}
	}
	h.ln = ln
	h.dir = directory.NewClient(cfg.Net, cfg.DirAddr)
	if err := h.dir.RegisterProxy(ctx, cfg.ID, ln.Addr()); err != nil {
		ln.Close()
		return nil, fmt.Errorf("proxy: register: %w", err)
	}
	ctl := h.controlObject()
	h.lis.Register(ControlServiceFor(cfg.ID), ctl)
	h.lis.Register(ControlService, ctl)
	if len(h.queueable) > 0 {
		h.lis.SetFallback(h.queueFallback)
	}
	if err := h.lis.PublishGlobal(ctx, h.dir, ControlServiceFor(cfg.ID), ln.Addr()); err != nil {
		ln.Close()
		return nil, err
	}
	return h, nil
}

// Addr returns the host's bound address.
func (h *Host) Addr() string { return h.ln.Addr() }

// ID returns the proxy's identity.
func (h *Host) ID() string { return h.id }

// Adopted lists currently adopted users, sorted.
func (h *Host) Adopted() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.adopted))
	for u := range h.adopted {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Adopt takes over user's services from snapshot. Idempotent per user:
// adopting an already-adopted user replaces the previous adoption.
func (h *Host) Adopt(ctx context.Context, user string, snapshot []byte) error {
	if h.adopter == nil {
		return &wire.RemoteError{Code: wire.CodeInternal, Msg: "proxy: host has no adopter"}
	}
	services, checkpoint, err := h.adopter(user, snapshot)
	if err != nil {
		return fmt.Errorf("proxy: adopt %s: %w", user, err)
	}
	h.mu.Lock()
	if old, ok := h.adopted[user]; ok {
		for _, s := range old.services {
			h.lis.Unregister(s)
		}
	}
	ad := &adoption{checkpoint: checkpoint}
	for name, obj := range services {
		h.lis.Register(name, obj)
		ad.services = append(ad.services, name)
	}
	sort.Strings(ad.services)
	h.adopted[user] = ad
	h.mu.Unlock()
	return nil
}

// Handback returns the adopted user's current snapshot and stops
// serving their services.
func (h *Host) Handback(user string) ([]byte, error) {
	h.mu.Lock()
	ad, ok := h.adopted[user]
	if ok {
		delete(h.adopted, user)
		for _, s := range ad.services {
			h.lis.Unregister(s)
		}
	}
	h.mu.Unlock()
	if !ok {
		return nil, &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("proxy: user %q not adopted", user)}
	}
	if ad.checkpoint == nil {
		return nil, nil
	}
	return ad.checkpoint()
}

// Close unbinds the host.
func (h *Host) Close() error { return h.ln.Close() }

// --- offline-user update queue ----------------------------------------------

// queueFallback absorbs a request for a service this host does not
// serve: if the method is queueable and the service names a user
// ("cal.phil" → "phil"), the update is parked in that user's bounded
// queue for the device's reconnect session to drain. Everything else
// falls through to the stock no-service error.
func (h *Host) queueFallback(_ context.Context, req *transport.Request) (any, bool, error) {
	if !h.queueable[req.Method] {
		return nil, false, nil
	}
	dot := strings.LastIndexByte(req.Service, '.')
	if dot < 0 || dot == len(req.Service)-1 {
		return nil, false, nil
	}
	h.QueueUpdate(req.Service[dot+1:], Update{Service: req.Service, Method: req.Method, Args: req.Args})
	return true, true, nil
}

// QueueUpdate parks an update for user, evicting the oldest entry (and
// counting it in the proxy_queue_dropped metric) when the bounded
// queue is full.
func (h *Host) QueueUpdate(user string, u Update) {
	h.updMu.Lock()
	q := append(h.updates[user], u)
	if drop := len(q) - h.updCap; drop > 0 {
		q = append([]Update(nil), q[drop:]...)
		h.dropped[user] += int64(drop)
		if h.met != nil {
			for i := 0; i < drop; i++ {
				h.met.Observe(metrics.LayerSync, ControlServiceFor(h.id), "proxy_queue_dropped", "", 0)
			}
		}
	}
	h.updates[user] = q
	h.updMu.Unlock()
}

// DrainUpdates pops and returns user's queued updates plus how many
// were dropped to the bound since the last drain.
func (h *Host) DrainUpdates(user string) ([]Update, int64) {
	h.updMu.Lock()
	defer h.updMu.Unlock()
	ups := h.updates[user]
	n := h.dropped[user]
	delete(h.updates, user)
	delete(h.dropped, user)
	return ups, n
}

// QueuedUpdates returns a copy of user's pending updates.
func (h *Host) QueuedUpdates(user string) []Update {
	h.updMu.Lock()
	defer h.updMu.Unlock()
	return append([]Update(nil), h.updates[user]...)
}

// controlObject exposes Adopt/Handback/Adopted over the wire so a
// device can push its state before disconnecting and pull it back on
// return.
func (h *Host) controlObject() *listener.Object {
	obj := listener.NewObject()
	obj.Handle("Adopt", func(ctx context.Context, call *listener.Call) (any, error) {
		user := call.Args.String("user")
		if user == "" {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "Adopt needs a user"}
		}
		snap, err := base64.StdEncoding.DecodeString(call.Args.String("snapshot"))
		if err != nil {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: fmt.Sprintf("bad snapshot: %v", err)}
		}
		if err := h.Adopt(ctx, user, snap); err != nil {
			return nil, err
		}
		return true, nil
	})
	obj.Handle("Handback", func(ctx context.Context, call *listener.Call) (any, error) {
		snap, err := h.Handback(call.Args.String("user"))
		if err != nil {
			return nil, err
		}
		return map[string]string{"snapshot": base64.StdEncoding.EncodeToString(snap)}, nil
	})
	obj.Handle("Adopted", func(ctx context.Context, call *listener.Call) (any, error) {
		return h.Adopted(), nil
	})
	obj.Handle("QueueUpdate", func(ctx context.Context, call *listener.Call) (any, error) {
		user := call.Args.String("user")
		svc := call.Args.String("service")
		method := call.Args.String("method")
		if user == "" || svc == "" || method == "" {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "QueueUpdate needs user, service, and method"}
		}
		args := wire.Args{}
		if _, ok := call.Args["args"]; ok {
			if err := call.Args.Decode("args", &args); err != nil {
				return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "bad args: " + err.Error()}
			}
		}
		h.QueueUpdate(user, Update{Service: svc, Method: method, Args: args})
		return true, nil
	})
	obj.Handle("DrainUpdates", func(ctx context.Context, call *listener.Call) (any, error) {
		user := call.Args.String("user")
		if user == "" {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "DrainUpdates needs a user"}
		}
		ups, dropped := h.DrainUpdates(user)
		return map[string]any{"updates": ups, "dropped": dropped}, nil
	})
	return obj
}

// --- device-side helpers -----------------------------------------------------

// PushToProxy sends a snapshot of the device's state to the proxy
// assigned to user (looked up in the directory) so the proxy can serve
// while the device is away. Call just before a deliberate disconnect.
func PushToProxy(ctx context.Context, net transport.Network, dir *directory.Client, user string, snapshot []byte) error {
	info, err := dir.LookupUser(ctx, user)
	if err != nil {
		return err
	}
	if info.Proxy == "" {
		return &wire.RemoteError{Code: wire.CodeUnavailable, Msg: fmt.Sprintf("proxy: user %q has no assigned proxy", user)}
	}
	resp, err := net.Call(ctx, info.Proxy, &transport.Request{
		Service: ControlService,
		Method:  "Adopt",
		Caller:  user,
		Args: wire.Args{
			"user":     user,
			"snapshot": base64.StdEncoding.EncodeToString(snapshot),
		},
	})
	if err != nil {
		return err
	}
	if !resp.OK {
		return &wire.RemoteError{Code: resp.Code, Msg: resp.Error}
	}
	return nil
}

// PullFromProxy retrieves the user's state from its proxy after the
// device reconnects, ending the adoption.
func PullFromProxy(ctx context.Context, net transport.Network, dir *directory.Client, user string) ([]byte, error) {
	info, err := dir.LookupUser(ctx, user)
	if err != nil {
		return nil, err
	}
	if info.Proxy == "" {
		return nil, &wire.RemoteError{Code: wire.CodeUnavailable, Msg: fmt.Sprintf("proxy: user %q has no assigned proxy", user)}
	}
	resp, err := net.Call(ctx, info.Proxy, &transport.Request{
		Service: ControlService,
		Method:  "Handback",
		Caller:  user,
		Args:    wire.Args{"user": user},
	})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, &wire.RemoteError{Code: resp.Code, Msg: resp.Error}
	}
	var out struct {
		Snapshot string `json:"snapshot"`
	}
	if err := wire.Unmarshal(resp.Result, &out); err != nil {
		return nil, err
	}
	return base64.StdEncoding.DecodeString(out.Snapshot)
}
