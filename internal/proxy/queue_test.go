package proxy

import (
	"context"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"

	"repro/internal/directory"
)

func startQueueHost(t *testing.T, cap int) (*Host, *sim.Net, *metrics.Registry) {
	t.Helper()
	net := sim.New(sim.Config{})
	srv := directory.NewServer()
	if _, err := net.Listen("dir", srv.Handler()); err != nil {
		t.Fatal(err)
	}
	met := metrics.NewRegistry()
	h, err := StartHost(context.Background(), HostConfig{
		ID: "p1", Net: net, DirAddr: "dir",
		QueueMethods:   []string{"MeetingUpdate"},
		UpdateQueueCap: cap,
		Metrics:        met,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h, net, met
}

func TestFallbackQueuesOfflineUserUpdates(t *testing.T) {
	h, net, _ := startQueueHost(t, 8)
	ctx := context.Background()

	// A MeetingUpdate for a user the host never adopted is absorbed.
	resp, err := net.Call(ctx, h.Addr(), &transport.Request{
		Service: "cal.phil", Method: "MeetingUpdate", Caller: "andy",
		Args: wire.Args{"meeting": map[string]any{"id": "M-1"}},
	})
	if err != nil || !resp.OK {
		t.Fatalf("queueable update rejected: err=%v resp=%+v", err, resp)
	}
	ups := h.QueuedUpdates("phil")
	if len(ups) != 1 || ups[0].Service != "cal.phil" || ups[0].Method != "MeetingUpdate" {
		t.Fatalf("queued = %+v", ups)
	}

	// Non-queueable methods keep failing: a negotiation RPC must not be
	// blind-acked.
	resp, err = net.Call(ctx, h.Addr(), &transport.Request{
		Service: "links.phil", Method: "Install", Caller: "andy",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != wire.CodeNoService {
		t.Fatalf("negotiation RPC was absorbed: %+v", resp)
	}
	if got := h.QueuedUpdates("phil"); len(got) != 1 {
		t.Fatalf("non-queueable method was queued: %+v", got)
	}
}

func TestUpdateQueueBoundedDropOldest(t *testing.T) {
	h, _, met := startQueueHost(t, 2)
	for _, id := range []string{"a", "b", "c"} {
		h.QueueUpdate("phil", Update{Service: "cal.phil", Method: "MeetingUpdate",
			Args: wire.Args{"meeting": map[string]any{"id": id}}})
	}
	ups, dropped := h.DrainUpdates("phil")
	if len(ups) != 2 || dropped != 1 {
		t.Fatalf("drain = %d updates, %d dropped; want 2 / 1", len(ups), dropped)
	}
	var first struct {
		ID string `json:"id"`
	}
	if err := ups[0].Args.Decode("meeting", &first); err != nil || first.ID != "b" {
		t.Fatalf("oldest not evicted: head = %+v (err %v)", first, err)
	}
	if e := met.Snapshot().Find(metrics.LayerSync, ControlServiceFor("p1"), "proxy_queue_dropped", ""); e == nil || e.Count != 1 {
		t.Fatalf("proxy_queue_dropped = %+v, want count 1", e)
	}
	// Drain resets the queue and the drop counter.
	if ups, dropped := h.DrainUpdates("phil"); len(ups) != 0 || dropped != 0 {
		t.Fatalf("second drain = %d / %d, want empty", len(ups), dropped)
	}
}

func TestDrainUpdatesOverControlRPC(t *testing.T) {
	h, net, _ := startQueueHost(t, 8)
	ctx := context.Background()

	// Queue one explicitly over the control RPC, one via fallback.
	resp, err := net.Call(ctx, h.Addr(), &transport.Request{
		Service: ControlService, Method: "QueueUpdate", Caller: "andy",
		Args: wire.Args{"user": "phil", "service": "cal.phil", "method": "MeetingUpdate",
			"args": wire.Args{"meeting": map[string]any{"id": "M-9"}}},
	})
	if err != nil || !resp.OK {
		t.Fatalf("QueueUpdate RPC: err=%v resp=%+v", err, resp)
	}
	resp, err = net.Call(ctx, h.Addr(), &transport.Request{
		Service: ControlService, Method: "DrainUpdates", Caller: "phil",
		Args: wire.Args{"user": "phil"},
	})
	if err != nil || !resp.OK {
		t.Fatalf("DrainUpdates RPC: err=%v resp=%+v", err, resp)
	}
	var out struct {
		Updates []Update `json:"updates"`
		Dropped int64    `json:"dropped"`
	}
	if err := wire.Unmarshal(resp.Result, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Updates) != 1 || out.Updates[0].Service != "cal.phil" || out.Dropped != 0 {
		t.Fatalf("drained = %+v", out)
	}
	if got := h.QueuedUpdates("phil"); len(got) != 0 {
		t.Fatalf("queue not emptied by RPC drain: %+v", got)
	}
}
