package proxy_test

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/engine"
	"repro/internal/listener"
	"repro/internal/proxy"
	"repro/internal/sim"
	"repro/internal/wire"
)

// kvAdopter reconstructs a trivial key/value "calendar" service from a
// JSON snapshot and checkpoints it back.
func kvAdopter(t *testing.T) proxy.Adopter {
	return func(user string, snapshot []byte) (map[string]*listener.Object, func() ([]byte, error), error) {
		var state map[string]string
		if len(snapshot) > 0 {
			if err := json.Unmarshal(snapshot, &state); err != nil {
				return nil, nil, err
			}
		}
		if state == nil {
			state = make(map[string]string)
		}
		var mu sync.Mutex
		obj := listener.NewObject()
		obj.Handle("Get", func(ctx context.Context, call *listener.Call) (any, error) {
			mu.Lock()
			defer mu.Unlock()
			return state[call.Args.String("k")], nil
		})
		obj.Handle("Set", func(ctx context.Context, call *listener.Call) (any, error) {
			mu.Lock()
			defer mu.Unlock()
			state[call.Args.String("k")] = call.Args.String("v")
			return true, nil
		})
		checkpoint := func() ([]byte, error) {
			mu.Lock()
			defer mu.Unlock()
			return json.Marshal(state)
		}
		return map[string]*listener.Object{"cal." + user: obj}, checkpoint, nil
	}
}

type world struct {
	net *sim.Net
	clk *clock.Fake
	dir *directory.Client
}

func newWorld(t *testing.T) *world {
	t.Helper()
	net := sim.New(sim.Config{})
	clk := clock.NewFake(time.Date(2003, 4, 22, 9, 0, 0, 0, time.UTC))
	srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(time.Hour))
	if _, err := net.Listen("dir", srv.Handler()); err != nil {
		t.Fatal(err)
	}
	return &world{net: net, clk: clk, dir: directory.NewClient(net, "dir")}
}

func TestStartHostRegistersWithDirectory(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	h, err := proxy.StartHost(ctx, proxy.HostConfig{ID: "p1", Net: w.net, DirAddr: "dir", Adopter: kvAdopter(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// A user registered afterwards gets this proxy assigned.
	if err := w.dir.RegisterUser(ctx, "phil", "node-phil", 0); err != nil {
		t.Fatal(err)
	}
	u, err := w.dir.LookupUser(ctx, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if u.Proxy != h.Addr() {
		t.Fatalf("proxy = %q, want %q", u.Proxy, h.Addr())
	}
}

func TestAdoptServeHandback(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	h, err := proxy.StartHost(ctx, proxy.HostConfig{ID: "p1", Net: w.net, DirAddr: "dir", Adopter: kvAdopter(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	snap, _ := json.Marshal(map[string]string{"mon-9": "busy"})
	if err := h.Adopt(ctx, "phil", snap); err != nil {
		t.Fatal(err)
	}
	if got := h.Adopted(); len(got) != 1 || got[0] != "phil" {
		t.Fatalf("adopted = %v", got)
	}

	// The proxy answers cal.phil directly.
	resp, err := w.net.Call(ctx, h.Addr(), &wire.Request{Service: "cal.phil", Method: "Get", Args: wire.Args{"k": "mon-9"}})
	if err != nil || !resp.OK {
		t.Fatalf("resp = %+v err = %v", resp, err)
	}
	var v string
	if err := wire.Unmarshal(resp.Result, &v); err != nil {
		t.Fatal(err)
	}
	if v != "busy" {
		t.Fatalf("v = %q", v)
	}

	// Mutate through the proxy, then hand back: the change must be in
	// the returned snapshot.
	if _, err := w.net.Call(ctx, h.Addr(), &wire.Request{Service: "cal.phil", Method: "Set", Args: wire.Args{"k": "tue-10", "v": "reserved"}}); err != nil {
		t.Fatal(err)
	}
	back, err := h.Handback("phil")
	if err != nil {
		t.Fatal(err)
	}
	var state map[string]string
	if err := json.Unmarshal(back, &state); err != nil {
		t.Fatal(err)
	}
	if state["tue-10"] != "reserved" || state["mon-9"] != "busy" {
		t.Fatalf("state = %v", state)
	}
	// After handback the proxy no longer serves the user.
	resp, err = w.net.Call(ctx, h.Addr(), &wire.Request{Service: "cal.phil", Method: "Get", Args: wire.Args{"k": "mon-9"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != wire.CodeNoService {
		t.Fatalf("resp = %+v", resp)
	}
	if h.Adopted() != nil && len(h.Adopted()) != 0 {
		t.Fatalf("adopted = %v", h.Adopted())
	}
	if _, err := h.Handback("phil"); wire.CodeOf(err) != wire.CodeNoService {
		t.Fatalf("double handback: %v", err)
	}
}

func TestPushPullHelpers(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	h, err := proxy.StartHost(ctx, proxy.HostConfig{ID: "p1", Net: w.net, DirAddr: "dir", Adopter: kvAdopter(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := w.dir.RegisterUser(ctx, "phil", "node-phil", 0); err != nil {
		t.Fatal(err)
	}
	snap, _ := json.Marshal(map[string]string{"wed-14": "free"})
	if err := proxy.PushToProxy(ctx, w.net, w.dir, "phil", snap); err != nil {
		t.Fatal(err)
	}
	got, err := proxy.PullFromProxy(ctx, w.net, w.dir, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(got, []byte("wed-14")) {
		t.Fatalf("snapshot = %s", got)
	}
	// Without an assigned proxy the helpers fail cleanly.
	if err := w.dir.RegisterUser(ctx, "noproxy-user", "x", 0); err != nil {
		t.Fatal(err)
	}
	// (This user *does* get the proxy since one is registered; create
	// a fresh world without proxies instead.)
	w2 := newWorld(t)
	if err := w2.dir.RegisterUser(ctx, "lonely", "x", 0); err != nil {
		t.Fatal(err)
	}
	if err := proxy.PushToProxy(ctx, w2.net, w2.dir, "lonely", snap); wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("push without proxy: %v", err)
	}
}

func TestEngineFailoverThroughRealProxy(t *testing.T) {
	// Full §5.2 story: device up -> direct; device announces
	// disconnect and pushes to proxy -> proxy answers; device returns
	// and pulls state back -> direct again with proxy-era changes.
	w := newWorld(t)
	ctx := context.Background()
	h, err := proxy.StartHost(ctx, proxy.HostConfig{ID: "p1", Net: w.net, DirAddr: "dir", Adopter: kvAdopter(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// phil's real device with the same kv service shape.
	philState := map[string]string{"mon-9": "free"}
	var philMu sync.Mutex
	phil, err := core.Start(ctx, core.Config{User: "phil", Net: w.net, DirAddr: "dir", Clock: w.clk})
	if err != nil {
		t.Fatal(err)
	}
	obj := listener.NewObject()
	obj.Handle("Get", func(ctx context.Context, call *listener.Call) (any, error) {
		philMu.Lock()
		defer philMu.Unlock()
		return philState[call.Args.String("k")], nil
	})
	obj.Handle("Set", func(ctx context.Context, call *listener.Call) (any, error) {
		philMu.Lock()
		defer philMu.Unlock()
		philState[call.Args.String("k")] = call.Args.String("v")
		return true, nil
	})
	if err := phil.RegisterService(ctx, "cal.phil", obj); err != nil {
		t.Fatal(err)
	}

	andy := engine.New(w.net, directory.NewClient(w.net, "dir"), "andy")
	var v string
	if err := andy.Invoke(ctx, "cal.phil", "Get", wire.Args{"k": "mon-9"}, &v); err != nil || v != "free" {
		t.Fatalf("direct get: %v %q", err, v)
	}

	// Deliberate disconnect: push state, mark offline, drop off net.
	philMu.Lock()
	snap, _ := json.Marshal(philState)
	philMu.Unlock()
	if err := proxy.PushToProxy(ctx, w.net, phil.Dir, "phil", snap); err != nil {
		t.Fatal(err)
	}
	if err := phil.Dir.SetOffline(ctx, "phil", true); err != nil {
		t.Fatal(err)
	}
	w.net.SetDown(phil.Addr(), true)

	// andy's calls now land on the proxy transparently.
	if err := andy.Invoke(ctx, "cal.phil", "Set", wire.Args{"k": "mon-9", "v": "reserved"}, nil); err != nil {
		t.Fatalf("proxied set: %v", err)
	}
	if err := andy.Invoke(ctx, "cal.phil", "Get", wire.Args{"k": "mon-9"}, &v); err != nil || v != "reserved" {
		t.Fatalf("proxied get: %v %q", err, v)
	}

	// Device returns: pull state, restore, go back online.
	w.net.SetDown(phil.Addr(), false)
	back, err := proxy.PullFromProxy(ctx, w.net, phil.Dir, "phil")
	if err != nil {
		t.Fatal(err)
	}
	philMu.Lock()
	if err := json.Unmarshal(back, &philState); err != nil {
		philMu.Unlock()
		t.Fatal(err)
	}
	philMu.Unlock()
	if err := phil.Dir.SetOffline(ctx, "phil", false); err != nil {
		t.Fatal(err)
	}

	if err := andy.Invoke(ctx, "cal.phil", "Get", wire.Args{"k": "mon-9"}, &v); err != nil || v != "reserved" {
		t.Fatalf("post-return get: %v %q (proxy-era change lost)", err, v)
	}
}

func TestAdoptWithoutAdopterFails(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	h, err := proxy.StartHost(ctx, proxy.HostConfig{ID: "p1", Net: w.net, DirAddr: "dir"})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.Adopt(ctx, "phil", nil); wire.CodeOf(err) != wire.CodeInternal {
		t.Fatalf("err = %v", err)
	}
}

func TestHostConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := proxy.StartHost(ctx, proxy.HostConfig{Net: sim.New(sim.Config{})}); err == nil {
		t.Fatal("missing ID accepted")
	}
	if _, err := proxy.StartHost(ctx, proxy.HostConfig{ID: "p"}); err == nil {
		t.Fatal("missing Net accepted")
	}
}
