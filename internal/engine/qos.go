package engine

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/wire"
)

// QoS describes the delivery guarantees for an invocation. The paper
// assigns QoS responsibility to the groupware ("providing QoS support
// services for SyDApps", §2; elaborated in the authors' companion
// ICDCS'03 paper on QoS-aware SyD transactions): in a weakly connected
// mobile deployment an application states its tolerance and the engine
// turns transient unavailability into bounded retries.
type QoS struct {
	// AttemptTimeout bounds each individual attempt (0 = inherit the
	// caller's context only).
	AttemptTimeout time.Duration
	// Retries is the number of re-attempts after the first try
	// (0 = exactly one attempt).
	Retries int
	// Backoff is the wait before the first retry; it doubles each
	// further retry. 0 retries immediately.
	Backoff time.Duration
}

// BestEffort is a single attempt with no retries.
var BestEffort = QoS{}

// Guaranteed is a practical default for mobile deployments: three
// retries starting at 50 ms.
var Guaranteed = QoS{Retries: 3, Backoff: 50 * time.Millisecond}

// qosClock lets tests drive backoff waits deterministically.
var (
	qosClockMu sync.RWMutex
	qosClock   clock.Clock = clock.System
)

// SetQoSClock overrides the backoff clock (tests). It returns a
// restore function.
func SetQoSClock(c clock.Clock) (restore func()) {
	qosClockMu.Lock()
	old := qosClock
	qosClock = c
	qosClockMu.Unlock()
	return func() {
		qosClockMu.Lock()
		qosClock = old
		qosClockMu.Unlock()
	}
}

func getQoSClock() clock.Clock {
	qosClockMu.RLock()
	defer qosClockMu.RUnlock()
	return qosClock
}

// RetryInterceptor turns transient unavailability into bounded,
// backed-off retries — the interceptor form of the engine's QoS
// support. Only transient failures (unreachable device, lost message,
// an attempt timeout) are retried; application errors (conflicts,
// auth, bad args) surface immediately. Routing state is reset between
// attempts, so each retry re-resolves through the chain's cache and
// resolver stages (a device that re-registered at a new address, or
// fell back to its proxy, is found).
func RetryInterceptor(qos QoS) Interceptor {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call, out any) error {
			attempts := qos.Retries + 1
			backoff := qos.Backoff
			orig := *call
			var lastErr error
			for attempt := 0; attempt < attempts; attempt++ {
				if attempt > 0 {
					*call = orig // drop per-attempt routing state
					if backoff > 0 {
						select {
						case <-getQoSClock().After(backoff):
						case <-ctx.Done():
							return ctx.Err()
						}
						backoff *= 2
					}
				}
				attemptCtx := ctx
				var cancel context.CancelFunc
				if qos.AttemptTimeout > 0 {
					attemptCtx, cancel = context.WithTimeout(ctx, qos.AttemptTimeout)
				}
				err := next(attemptCtx, call, out)
				if cancel != nil {
					cancel()
				}
				if err == nil {
					return nil
				}
				lastErr = err
				if !retryable(err) {
					return err
				}
				if ctx.Err() != nil {
					return ctx.Err()
				}
			}
			return lastErr
		}
	}
}

// InvokeQoS is Invoke with retry-on-unavailability semantics: the
// engine's chain wrapped, for this call, in RetryInterceptor(qos).
func (e *Engine) InvokeQoS(ctx context.Context, qos QoS, service, method string, args wire.Args, out any) error {
	inv := RetryInterceptor(qos)(e.invoker())
	return inv(ctx, e.newCall(ctx, "", service, method, args), out)
}

// retryable reports whether an error is transient.
func retryable(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true // the attempt timed out; the next may succeed
	}
	return isUnavailable(err)
}

// GroupInvokeQoS is GroupInvoke with per-member QoS, bounded by the
// same fan-out limit.
func (e *Engine) GroupInvokeQoS(ctx context.Context, qos QoS, services []string, method string, args wire.Args) []GroupResult {
	return e.groupRun(services, func(svc string) GroupResult {
		var raw json.RawMessage
		err := e.InvokeQoS(ctx, qos, svc, method, args, &raw)
		return GroupResult{Service: svc, Err: err, Raw: raw}
	})
}
