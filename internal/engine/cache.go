package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/directory"
)

// DirCache is the client-side directory route cache. Installed as an
// interceptor it pre-fills Call.Route from memory on the warm path,
// so a hot invocation loop makes zero directory calls — the directory
// server stops being a per-call bottleneck. Entries expire after a
// TTL and are invalidated eagerly whenever an attempt ends
// unreachable or the resolver failed over to the proxy, so a moved or
// crashed device is re-resolved on the next call.
//
// A DirCache is independent of the directory.Client's own lookup
// cache: the client cache saves wire round-trips inside the directory
// stub, while DirCache short-circuits the whole resolution stage of
// the interceptor chain.
type DirCache struct {
	ttl   time.Duration
	nowFn func() time.Time

	// epoch is the newest directory shard-map epoch this cache has
	// been told about (via SetEpoch, wired to the directory client's
	// OnEpochChange hook). Entries remember the epoch they were stored
	// under; an entry from an older epoch is treated as a miss, so an
	// epoch bump invalidates every stale route at once without waiting
	// out the TTL.
	epoch atomic.Uint64

	mu      sync.RWMutex
	entries map[string]dirCacheEntry

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
}

type dirCacheEntry struct {
	info    directory.ServiceInfo
	expires time.Time
	epoch   uint64
}

// DirCacheOption configures a DirCache.
type DirCacheOption func(*DirCache)

// WithDirCacheNow overrides the cache's time source (tests drive TTL
// expiry deterministically).
func WithDirCacheNow(now func() time.Time) DirCacheOption {
	return func(c *DirCache) { c.nowFn = now }
}

// NewDirCache creates a route cache whose entries live for ttl.
func NewDirCache(ttl time.Duration, opts ...DirCacheOption) *DirCache {
	c := &DirCache{
		ttl:     ttl,
		nowFn:   time.Now,
		entries: make(map[string]dirCacheEntry),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// lookup returns the unexpired cached route for name. Entries stored
// under an older shard-map epoch than the cache's current one are
// stale by definition (the topology or a binding changed) and miss.
func (c *DirCache) lookup(name string) (directory.ServiceInfo, bool) {
	c.mu.RLock()
	e, ok := c.entries[name]
	c.mu.RUnlock()
	if !ok || !c.nowFn().Before(e.expires) || e.epoch < c.epoch.Load() {
		return directory.ServiceInfo{}, false
	}
	return e.info, true
}

// store caches a freshly resolved route for name under the current
// epoch.
func (c *DirCache) store(name string, info directory.ServiceInfo) {
	c.mu.Lock()
	c.entries[name] = dirCacheEntry{info: info, expires: c.nowFn().Add(c.ttl), epoch: c.epoch.Load()}
	c.mu.Unlock()
}

// SetEpoch informs the cache of a newer shard-map epoch. All entries
// stored under older epochs become misses immediately; the map itself
// is dropped so they don't linger. Older (out-of-order) observations
// are ignored.
func (c *DirCache) SetEpoch(epoch uint64) {
	for {
		cur := c.epoch.Load()
		if epoch <= cur {
			return
		}
		if !c.epoch.CompareAndSwap(cur, epoch) {
			continue
		}
		c.mu.Lock()
		n := len(c.entries)
		c.entries = make(map[string]dirCacheEntry)
		c.mu.Unlock()
		c.invalidations.Add(int64(n))
		return
	}
}

// Epoch returns the newest shard-map epoch the cache has observed.
func (c *DirCache) Epoch() uint64 { return c.epoch.Load() }

// Invalidate drops the cached route for name.
func (c *DirCache) Invalidate(name string) {
	c.mu.Lock()
	_, had := c.entries[name]
	delete(c.entries, name)
	c.mu.Unlock()
	if had {
		c.invalidations.Add(1)
	}
}

// Flush drops every cached route.
func (c *DirCache) Flush() {
	c.mu.Lock()
	c.entries = make(map[string]dirCacheEntry)
	c.mu.Unlock()
}

// DirCacheStats is a snapshot of cache effectiveness counters.
type DirCacheStats struct {
	Hits          int64
	Misses        int64
	Invalidations int64
	Size          int
}

// Stats returns the cache's counters and current entry count.
func (c *DirCache) Stats() DirCacheStats {
	c.mu.RLock()
	size := len(c.entries)
	c.mu.RUnlock()
	return DirCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Size:          size,
	}
}

// Interceptor returns the cache's chain stage. It sits directly above
// the resolver: on a hit it pre-fills Call.Route (the resolver then
// skips its directory lookup); on a miss it lets the resolver do the
// lookup and caches the result once the attempt succeeds. Unreachable
// errors and proxy failover invalidate the entry.
func (c *DirCache) Interceptor() Interceptor {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call, out any) error {
			if call.Addr != "" || call.Route != nil {
				return next(ctx, call, out) // nothing to resolve or already resolved
			}
			info, hit := c.lookup(call.Service)
			if hit {
				c.hits.Add(1)
				call.Route = &info
			} else {
				c.misses.Add(1)
			}
			err := next(ctx, call, out)
			switch {
			case call.FailedOver || (err != nil && isUnavailable(err)):
				c.Invalidate(call.Service)
			case err == nil && !hit && call.Route != nil:
				c.store(call.Service, *call.Route)
			}
			return err
		}
	}
}
