package engine

import (
	"context"
	"time"

	"repro/internal/directory"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Call describes one outbound invocation as it flows through the
// client interceptor chain. Interceptors may rewrite routing state
// (Route, Dest) and metadata before passing the call on.
type Call struct {
	// Service and Method name the invocation target.
	Service, Method string
	// Args are the named arguments (never mutated by the chain).
	Args wire.Args
	// Meta is the request metadata stamped onto the wire request
	// (request id, hop count, deadline hint). Identity rides in the
	// dedicated Caller/Credential fields, not in Meta, so the hot path
	// never has to filter the map before it hits the wire.
	Meta wire.Metadata
	// Caller is the invoking SyD user stamped by the credential stage
	// (wire.Request.Caller on the wire).
	Caller string
	// Credential is the TEA-sealed credential blob stamped by the
	// credential stage (wire.Request.Credential on the wire).
	Credential string
	// Addr is an explicit destination forced by the caller
	// (Engine.InvokeAddr); when set, directory resolution is skipped.
	Addr string
	// Route is the resolved directory record for Service. The cache
	// interceptor pre-fills it on a hit; the resolver fills it on a
	// miss.
	Route *directory.ServiceInfo
	// Dest is the concrete dial address chosen for the current
	// attempt (set by the resolver, read by the transport stage).
	Dest string
	// FailedOver records that the resolver fell back to the proxy
	// after the primary address was unreachable (the cache
	// interceptor invalidates on it).
	FailedOver bool
}

// Invoker executes one invocation attempt, decoding the result into
// out (out may be nil). The innermost invoker performs the transport
// exchange; outer invokers are produced by Interceptors.
type Invoker func(ctx context.Context, call *Call, out any) error

// Interceptor wraps an Invoker with cross-cutting behavior (metrics,
// retries, caching, credential injection). Interceptors compose like
// HTTP middleware: the first interceptor in a chain is outermost.
type Interceptor func(next Invoker) Invoker

// ChainInterceptors composes ics into one Interceptor (ics[0]
// outermost). An empty chain is the identity.
func ChainInterceptors(ics ...Interceptor) Interceptor {
	return func(next Invoker) Invoker {
		for i := len(ics) - 1; i >= 0; i-- {
			next = ics[i](next)
		}
		return next
	}
}

// CredentialInterceptor stamps the engine's identity onto every
// outbound call: the caller name and, when one has been set, the
// TEA-sealed credential (§5.4). Identity goes into the dedicated
// Call.Caller/Call.Credential fields; interceptors that stuffed it
// into Meta instead (the pre-field convention) are still honored —
// those entries are moved into the fields so Meta stays identity-free
// on the wire.
func CredentialInterceptor(e *Engine) Interceptor {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call, out any) error {
			if call.Caller == "" {
				if c := call.Meta.Get(wire.MetaCaller); c != "" {
					call.Caller = c
					delete(call.Meta, wire.MetaCaller)
				} else {
					call.Caller = e.self
				}
			}
			if call.Credential == "" {
				if c := call.Meta.Get(wire.MetaCredential); c != "" {
					call.Credential = c
					delete(call.Meta, wire.MetaCredential)
				} else if cred := e.getCredential(); cred != "" {
					call.Credential = cred
				}
			}
			return next(ctx, call, out)
		}
	}
}

// MetricsInterceptor records per-(service, method, error-code) counts
// and latency for every attempt that passes through it.
func MetricsInterceptor(reg *metrics.Registry) Interceptor {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call, out any) error {
			start := time.Now()
			err := next(ctx, call, out)
			reg.Observe(metrics.LayerClient, call.Service, call.Method, wire.CodeOf(err), time.Since(start))
			return err
		}
	}
}

// TraceInterceptor opens one client span per logical invocation and
// injects its ids into the call metadata so the far side can continue
// the trace. It sits above the resolver, so a single span covers
// resolution, failover, and every transport attempt; the destination
// and failover verdict are annotated after the fact, once the resolver
// has chosen them.
func TraceInterceptor(t *trace.Tracer) Interceptor {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call, out any) error {
			ctx, s := t.StartSpan(ctx, "rpc.client")
			if s == nil {
				return next(ctx, call, out)
			}
			s.Annotate(trace.String("service", call.Service), trace.String("method", call.Method))
			s.Inject(call.Meta)
			err := next(ctx, call, out)
			if call.Dest != "" {
				s.Annotate(trace.String("dest", call.Dest))
			}
			if call.FailedOver {
				s.Annotate(trace.Bool("failover", true))
			}
			s.FinishErr(err)
			return err
		}
	}
}

// resolveInterceptor is the routing stage every engine chain ends
// with (just above the transport): it resolves Service through the
// directory unless a Route was pre-filled (cache hit) or an explicit
// Addr forces the destination, prefers the device while its owner is
// online, and fails over to the proxy when the primary is
// unreachable ("the proxy and the SyD object act as a single entity
// for an outsider", §5.2).
func resolveInterceptor(e *Engine) Interceptor {
	return func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call, out any) error {
			if call.Addr != "" {
				call.Dest = call.Addr
				return next(ctx, call, out)
			}
			if call.Route == nil {
				// Route-only resolution: the engine never needs the
				// method list, so skip fetching and decoding it.
				info, err := e.dir.ResolveService(ctx, call.Service)
				if err != nil {
					return err
				}
				call.Route = &info
			}
			primary, fallback := call.Route.Addr, call.Route.Proxy
			if !call.Route.OwnerOnline && call.Route.Proxy != "" {
				primary, fallback = call.Route.Proxy, call.Route.Addr
			}
			call.Dest = primary
			err := next(ctx, call, out)
			if err == nil || !isUnavailable(err) {
				return err
			}
			// Primary is gone: drop the cached lookup so future calls
			// re-resolve, then try the fallback if there is one.
			e.dir.Invalidate(call.Service)
			if fallback == "" || fallback == primary {
				return err
			}
			call.FailedOver = true
			call.Dest = fallback
			return next(ctx, call, out)
		}
	}
}
