package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/listener"
	"repro/internal/metrics"
	"repro/internal/wire"
)

func TestInterceptorOrderAndMetadata(t *testing.T) {
	// User interceptors run outermost, in the order given, and see the
	// metadata the credential stage stamps only after it has run.
	w := newWorld(t)
	w.addNode("phil")

	var trace []string
	tag := func(name string) Interceptor {
		return func(next Invoker) Invoker {
			return func(ctx context.Context, call *Call, out any) error {
				trace = append(trace, name+":pre(caller="+call.Caller+")")
				err := next(ctx, call, out)
				trace = append(trace, name+":post")
				return err
			}
		}
	}
	e := New(w.net, w.dir, "andy", WithInterceptors(tag("a"), tag("b")))

	if err := e.Invoke(context.Background(), "cal.phil", "WhoAmI", nil, nil); err != nil {
		t.Fatal(err)
	}
	// User interceptors sit above the credential stage, so neither has
	// a caller yet; composition order must be a around b.
	want := []string{"a:pre(caller=)", "b:pre(caller=)", "b:post", "a:post"}
	if fmt.Sprint(trace) != fmt.Sprint(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestUseAppendsInterceptor(t *testing.T) {
	w := newWorld(t)
	w.addNode("phil")
	e := New(w.net, w.dir, "andy")

	var calls atomic.Int64
	e.Use(func(next Invoker) Invoker {
		return func(ctx context.Context, call *Call, out any) error {
			calls.Add(1)
			return next(ctx, call, out)
		}
	})
	if err := e.Invoke(context.Background(), "cal.phil", "WhoAmI", nil, nil); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("interceptor ran %d times, want 1", calls.Load())
	}
}

func TestMetricsInterceptorRecordsClientSeries(t *testing.T) {
	w := newWorld(t)
	w.addNode("phil")
	reg := metrics.NewRegistry()
	e := New(w.net, w.dir, "andy", WithInterceptors(MetricsInterceptor(reg)))
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Invoke(ctx, "cal.phil", "FailIf", wire.Args{"who": "phil"}, nil); wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("err = %v", err)
	}

	snap := reg.Snapshot()
	ok := snap.Find(metrics.LayerClient, "cal.phil", "WhoAmI", "")
	if ok == nil || ok.Count != 3 {
		t.Fatalf("WhoAmI ok series = %+v", ok)
	}
	failed := snap.Find(metrics.LayerClient, "cal.phil", "FailIf", wire.CodeConflict)
	if failed == nil || failed.Count != 1 {
		t.Fatalf("FailIf conflict series = %+v", failed)
	}
}

func TestRequestMetadataReachesHandler(t *testing.T) {
	// The engine stamps request-id/caller/hops; the listener surfaces
	// them to the handler via Call.Meta.
	w := newWorld(t)
	var got wire.Metadata
	var gotCaller string
	l := listener.New("phil", nil)
	obj := listener.NewObject()
	obj.Handle("Inspect", func(ctx context.Context, call *listener.Call) (any, error) {
		got = call.Meta.Clone()
		gotCaller = call.Caller
		return nil, nil
	})
	l.Register("meta.phil", obj)
	ln, err := w.net.Listen("node-phil", l)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := w.dir.RegisterUser(ctx, "phil", ln.Addr(), 0); err != nil {
		t.Fatal(err)
	}
	if err := l.PublishGlobal(ctx, w.dir, "meta.phil", ln.Addr()); err != nil {
		t.Fatal(err)
	}

	e := New(w.net, w.dir, "andy")
	if err := e.Invoke(ctx, "meta.phil", "Inspect", nil, nil); err != nil {
		t.Fatal(err)
	}
	if gotCaller != "andy" {
		t.Fatalf("caller = %q", gotCaller)
	}
	if !strings.HasPrefix(got.Get(wire.MetaRequestID), "andy-") {
		t.Fatalf("request id = %q", got.Get(wire.MetaRequestID))
	}
	if got.Hops() != 1 {
		t.Fatalf("hops = %d, want 1", got.Hops())
	}
}

func TestOnwardInvokeInheritsRequestContext(t *testing.T) {
	// A handler that invokes onward carries the originating request id
	// and an incremented hop count — but NOT the upstream caller
	// identity (each engine re-stamps its own).
	w := newWorld(t)
	w.addNode("phil")

	var hopMeta wire.Metadata
	var hopCaller string
	relayL := listener.New("relay", nil)
	relayObj := listener.NewObject()
	relayE := New(w.net, w.dir, "relay")
	relayObj.Handle("Forward", func(ctx context.Context, call *listener.Call) (any, error) {
		return nil, relayE.Invoke(ctx, "probe.sink", "Sink", nil, nil)
	})
	relayL.Register("relay.svc", relayObj)
	relayLn, err := w.net.Listen("node-relay", relayL)
	if err != nil {
		t.Fatal(err)
	}

	sinkL := listener.New("sink", nil)
	sinkObj := listener.NewObject()
	sinkObj.Handle("Sink", func(ctx context.Context, call *listener.Call) (any, error) {
		hopMeta = call.Meta.Clone()
		hopCaller = call.Caller
		return nil, nil
	})
	sinkL.Register("probe.sink", sinkObj)
	sinkLn, err := w.net.Listen("node-sink", sinkL)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for _, reg := range []struct{ user, addr, svc string }{
		{"relay", relayLn.Addr(), "relay.svc"},
		{"sink", sinkLn.Addr(), "probe.sink"},
	} {
		if err := w.dir.RegisterUser(ctx, reg.user, reg.addr, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := relayL.PublishGlobal(ctx, w.dir, "relay.svc", relayLn.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := sinkL.PublishGlobal(ctx, w.dir, "probe.sink", sinkLn.Addr()); err != nil {
		t.Fatal(err)
	}

	e := New(w.net, w.dir, "andy")
	if err := e.Invoke(ctx, "relay.svc", "Forward", nil, nil); err != nil {
		t.Fatal(err)
	}
	if hopCaller != "relay" {
		t.Fatalf("onward caller = %q, want relay (no impersonation)", hopCaller)
	}
	if !strings.HasPrefix(hopMeta.Get(wire.MetaRequestID), "andy-") {
		t.Fatalf("request id not inherited: %q", hopMeta.Get(wire.MetaRequestID))
	}
	if hopMeta.Hops() != 2 {
		t.Fatalf("hops = %d, want 2", hopMeta.Hops())
	}
}

func TestInvokeGroupNameRejectsBadPattern(t *testing.T) {
	w := newWorld(t)
	e := New(w.net, w.dir, "phil")
	ctx := context.Background()
	if err := w.dir.CreateGroup(ctx, "g", []string{"alice"}); err != nil {
		t.Fatal(err)
	}
	for _, pattern := range []string{"", "cal", "cal.%s.%s", "cal.%d", "%s-%d"} {
		if _, err := e.InvokeGroupName(ctx, "g", pattern, "WhoAmI", nil); err == nil {
			t.Fatalf("pattern %q accepted", pattern)
		}
	}
	// The valid form still works (group member missing from the
	// directory is a per-member error, not a pattern error).
	if _, err := e.InvokeGroupName(ctx, "g", "cal.%s", "WhoAmI", nil); err != nil {
		t.Fatalf("valid pattern rejected: %v", err)
	}
}

func TestGroupInvokeBoundedFanOut(t *testing.T) {
	// With a limit of 2 the engine never runs more than 2 member calls
	// at once, and still returns every result in order.
	w := newWorld(t)
	const members = 6
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	services := make([]string, 0, members)
	ctx := context.Background()
	for i := 0; i < members; i++ {
		user := fmt.Sprintf("m%d", i)
		l := listener.New(user, nil)
		obj := listener.NewObject()
		obj.Handle("Slow", func(ctx context.Context, call *listener.Call) (any, error) {
			cur := inFlight.Add(1)
			mu.Lock()
			if cur > peak.Load() {
				peak.Store(cur)
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			inFlight.Add(-1)
			return "done", nil
		})
		svc := "slow." + user
		l.Register(svc, obj)
		ln, err := w.net.Listen("node-"+user, l)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.dir.RegisterUser(ctx, user, ln.Addr(), 0); err != nil {
			t.Fatal(err)
		}
		if err := l.PublishGlobal(ctx, w.dir, svc, ln.Addr()); err != nil {
			t.Fatal(err)
		}
		services = append(services, svc)
	}

	e := New(w.net, w.dir, "phil", WithGroupLimit(2))
	results := e.GroupInvoke(ctx, services, "Slow", nil)
	if !AllOK(results) {
		t.Fatalf("results = %+v", results)
	}
	for i, r := range results {
		if r.Service != services[i] {
			t.Fatalf("result order broken at %d: %+v", i, r)
		}
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency = %d, want <= 2", p)
	}
}

func TestGroupInvokeLargerThanLimit(t *testing.T) {
	// Groups larger than the worker limit still complete fully.
	w := newWorld(t)
	var services []string
	const n = 5
	for i := 0; i < n; i++ {
		u := fmt.Sprintf("v%d", i)
		w.addNode(u)
		services = append(services, "cal."+u)
	}
	e := New(w.net, w.dir, "phil", WithGroupLimit(1))
	results := e.GroupInvoke(context.Background(), services, "WhoAmI", nil)
	if len(results) != n || !AllOK(results) {
		t.Fatalf("results = %+v", results)
	}
}
