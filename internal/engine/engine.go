// Package engine implements SyDEngine (paper §3.1c): it lets a node
// "execute single or group services remotely via SyDListener and
// aggregate results".
//
// Every invocation flows through a composable interceptor chain
// (client-side middleware). The stock stages re-express what used to
// be inline logic: CredentialInterceptor seals the caller's identity
// onto each request (§5.4), the resolver stage looks services up
// through SyDDirectory and fails over to the owner's proxy when the
// device is down (§5.2), DirCache short-circuits resolution on the
// warm path, RetryInterceptor adds QoS retries, and
// MetricsInterceptor measures every attempt. Applications can push
// their own interceptors in front of the stock chain.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/directory"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// DefaultGroupLimit bounds GroupInvoke fan-out concurrency when no
// explicit limit is configured.
const DefaultGroupLimit = 32

// Engine is a node's invocation client. Safe for concurrent use.
type Engine struct {
	net        transport.Network
	dir        *directory.Client
	self       string
	idPrefix   string // self + "-", precomputed for request-id minting
	groupLimit int
	dirCache   *DirCache
	tracer     *trace.Tracer
	reqSeq     atomic.Uint64

	mu         sync.RWMutex
	credential string // sealed, sent with every request

	chainMu sync.RWMutex
	extra   []Interceptor // user interceptors, outermost first
	invoke  Invoker       // composed chain, ending at the transport
}

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithInterceptors appends client interceptors to the engine's chain,
// outermost first, ahead of the stock credential/cache/resolver
// stages.
func WithInterceptors(ics ...Interceptor) Option {
	return func(e *Engine) { e.extra = append(e.extra, ics...) }
}

// WithDirCache installs cache as the engine's directory route cache.
func WithDirCache(cache *DirCache) Option {
	return func(e *Engine) { e.dirCache = cache }
}

// WithTracer installs the node's tracer: a stock TraceInterceptor
// stage joins the chain and GroupInvoke opens a fan-out root span.
// Without a tracer the chain carries no tracing stage at all — the
// hot path stays allocation-identical to the untraced build.
func WithTracer(t *trace.Tracer) Option {
	return func(e *Engine) { e.tracer = t }
}

// WithGroupLimit bounds GroupInvoke's fan-out concurrency (n <= 0
// keeps DefaultGroupLimit).
func WithGroupLimit(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.groupLimit = n
		}
	}
}

// New creates an engine for the user self.
func New(net transport.Network, dir *directory.Client, self string, opts ...Option) *Engine {
	e := &Engine{net: net, dir: dir, self: self, idPrefix: self + "-", groupLimit: DefaultGroupLimit}
	for _, o := range opts {
		o(e)
	}
	e.rebuild()
	return e
}

// Use appends interceptors to the engine's chain (outermost first,
// after any already installed). Typically called during node wiring,
// before traffic flows.
func (e *Engine) Use(ics ...Interceptor) {
	e.chainMu.Lock()
	e.extra = append(e.extra, ics...)
	e.chainMu.Unlock()
	e.rebuild()
}

// rebuild recomposes the invoker chain:
//
//	user interceptors → credential → dir cache → resolver → transport
func (e *Engine) rebuild() {
	e.chainMu.Lock()
	defer e.chainMu.Unlock()
	chain := make([]Interceptor, 0, len(e.extra)+4)
	chain = append(chain, e.extra...)
	if e.tracer != nil {
		chain = append(chain, TraceInterceptor(e.tracer))
	}
	chain = append(chain, CredentialInterceptor(e))
	if e.dirCache != nil {
		chain = append(chain, e.dirCache.Interceptor())
	}
	chain = append(chain, resolveInterceptor(e))
	e.invoke = ChainInterceptors(chain...)(e.transportInvoker())
}

// invoker returns the current composed chain.
func (e *Engine) invoker() Invoker {
	e.chainMu.RLock()
	defer e.chainMu.RUnlock()
	return e.invoke
}

// transportInvoker is the chain's innermost stage: it performs the
// wire exchange with the destination the resolver chose.
func (e *Engine) transportInvoker() Invoker {
	return func(ctx context.Context, call *Call, out any) error {
		dest := call.Dest
		if dest == "" {
			dest = call.Addr
		}
		if dest == "" {
			return fmt.Errorf("engine: no destination for %s.%s (resolver stage missing)", call.Service, call.Method)
		}
		// Identity rides in the dedicated fields; everything else
		// (request id, hops, deadline hint) is already in call.Meta —
		// the credential stage keeps identity out of the map, so it can
		// go on the wire as-is with no filter copy. The deadline hint is
		// refreshed in place on every attempt (retries shrink it).
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); rem > 0 {
				if call.Meta == nil {
					call.Meta = make(wire.Metadata, 1)
				}
				call.Meta.SetDeadline(rem)
			}
		}
		req := &transport.Request{
			Service:    call.Service,
			Method:     call.Method,
			Args:       call.Args,
			Caller:     call.Caller,
			Credential: call.Credential,
			Meta:       call.Meta,
		}

		resp, err := e.net.Call(ctx, dest, req)
		if err != nil {
			var re *wire.RemoteError
			if errors.As(err, &re) {
				return err
			}
			return fmt.Errorf("engine: call %s.%s at %s: %w", call.Service, call.Method, dest, err)
		}
		if !resp.OK {
			return &wire.RemoteError{Code: resp.Code, Service: call.Service, Method: call.Method, Msg: resp.Error}
		}
		if out != nil {
			if err := wire.Unmarshal(resp.Result, out); err != nil {
				return fmt.Errorf("engine: decode %s.%s result: %w", call.Service, call.Method, err)
			}
		}
		return nil
	}
}

// Self returns the engine's user identity.
func (e *Engine) Self() string { return e.self }

// Directory returns the engine's directory client.
func (e *Engine) Directory() *directory.Client { return e.dir }

// DirCache returns the engine's route cache, or nil when disabled.
func (e *Engine) DirCache() *DirCache { return e.dirCache }

// SetCredential seals user:password with the deployment sealer and
// attaches it to every subsequent request.
func (e *Engine) SetCredential(sealer *auth.Sealer, user, password string) error {
	cred, err := sealer.Seal(user, password)
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.credential = cred
	e.mu.Unlock()
	return nil
}

func (e *Engine) getCredential() string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.credential
}

// newCall builds the chain input for one logical invocation. The
// request id is inherited from ctx metadata (a handler invoking
// onward keeps the inbound correlation id) or freshly minted, and the
// hop count advances by one.
func (e *Engine) newCall(ctx context.Context, addr, service, method string, args wire.Args) *Call {
	md := make(wire.Metadata, 6)
	if parent := wire.FromContext(ctx); parent != nil {
		if id := parent.Get(wire.MetaRequestID); id != "" {
			md[wire.MetaRequestID] = id
		}
		if h := parent.Hops(); h > 0 {
			md.SetHops(h)
		}
	}
	if md.Get(wire.MetaRequestID) == "" {
		// Append-based minting: one allocation for the id string
		// instead of fmt.Sprintf's boxing and formatting machinery.
		var seq [20]byte
		md[wire.MetaRequestID] = e.idPrefix + string(strconv.AppendUint(seq[:0], e.reqSeq.Add(1), 10))
	}
	md.SetHops(md.Hops() + 1)
	return &Call{Service: service, Method: method, Args: args, Meta: md, Addr: addr}
}

// Invoke calls method on the named service, decoding the result into
// out (out may be nil). Resolution, failover, credential injection,
// and any installed caching/metrics all happen in the interceptor
// chain.
func (e *Engine) Invoke(ctx context.Context, service, method string, args wire.Args, out any) error {
	return e.invoker()(ctx, e.newCall(ctx, "", service, method, args), out)
}

// InvokeAddr calls method on service at an explicit address, skipping
// directory resolution (the rest of the chain still applies).
func (e *Engine) InvokeAddr(ctx context.Context, addr, service, method string, args wire.Args, out any) error {
	return e.invoker()(ctx, e.newCall(ctx, addr, service, method, args), out)
}

// invokeRouted is Invoke with the directory route already resolved
// (group fan-out pre-resolves members in one batched pass); the
// resolver stage skips its per-call lookup.
func (e *Engine) invokeRouted(ctx context.Context, route directory.ServiceInfo, service, method string, args wire.Args, out any) error {
	call := e.newCall(ctx, "", service, method, args)
	call.Route = &route
	return e.invoker()(ctx, call, out)
}

// isUnavailable reports whether err means "the endpoint cannot be
// reached at all" (as opposed to the service answering with an error).
func isUnavailable(err error) bool {
	if errors.Is(err, transport.ErrUnreachable) {
		return true
	}
	return wire.CodeOf(err) == wire.CodeUnavailable
}

// GroupResult is one member's outcome in a group invocation.
type GroupResult struct {
	Service string
	Err     error
	Raw     json.RawMessage
}

// Decode unmarshals the member's result into v.
func (g *GroupResult) Decode(v any) error {
	if g.Err != nil {
		return g.Err
	}
	return wire.Unmarshal(g.Raw, v)
}

// groupRun fans one invocation per service across a bounded worker
// pool (at most the engine's group limit goroutines, never more than
// the member count) and returns per-member results in input order.
func (e *Engine) groupRun(services []string, invokeOne func(svc string) GroupResult) []GroupResult {
	results := make([]GroupResult, len(services))
	workers := e.groupLimit
	if workers <= 0 {
		workers = DefaultGroupLimit
	}
	if workers >= len(services) {
		// Small groups (the common fan-out) skip the dispatch channel:
		// one goroutine per member, no channel allocation or handoffs.
		var wg sync.WaitGroup
		wg.Add(len(services))
		for i := range services {
			go func(i int) {
				defer wg.Done()
				results[i] = invokeOne(services[i])
			}(i)
		}
		wg.Wait()
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = invokeOne(services[i])
			}
		}()
	}
	for i := range services {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// GroupInvoke calls the same method with the same args on every listed
// service concurrently and returns per-member results in input order
// (the engine's "group service invocation and result aggregation").
// Fan-out is bounded by the engine's group limit (WithGroupLimit,
// default DefaultGroupLimit) so huge groups cannot exhaust the node.
func (e *Engine) GroupInvoke(ctx context.Context, services []string, method string, args wire.Args) []GroupResult {
	// The fan-out root span: each member Invoke below opens its own
	// rpc.client child through the chain, so a stitched trace shows one
	// rpc.group node with one child per target.
	ctx, span := e.tracer.StartSpan(ctx, "rpc.group")
	if span != nil {
		span.Annotate(trace.String("method", method), trace.Int("targets", len(services)))
	}
	routes := e.groupRoutes(ctx, services)
	results := e.groupRun(services, func(svc string) GroupResult {
		var raw json.RawMessage
		var err error
		if info, ok := routes[svc]; ok && e.dirCache == nil {
			err = e.invokeRouted(ctx, info, svc, method, args, &raw)
		} else {
			// With a route cache the batch results were stored there, so
			// the plain path hits the cache and keeps its invalidation
			// semantics (unreachable / failover drop the entry).
			err = e.Invoke(ctx, svc, method, args, &raw)
		}
		return GroupResult{Service: svc, Err: err, Raw: raw}
	})
	if span != nil {
		span.Annotate(trace.Int("ok", OKCount(results)))
		span.FinishErr(FirstError(results))
	}
	return results
}

// groupRoutes pre-resolves the members of a group fan-out in one
// directory pass: names not already in the route cache go out as a
// single ResolveBatch (one RPC per directory shard) instead of one
// resolver round-trip per member. Resolved routes land in the route
// cache when one is installed. Best-effort: on any failure the members
// simply fall back to per-call resolution, which surfaces the error.
func (e *Engine) groupRoutes(ctx context.Context, services []string) map[string]directory.ServiceInfo {
	if len(services) < 2 {
		return nil
	}
	need := services
	if e.dirCache != nil {
		need = make([]string, 0, len(services))
		for _, s := range services {
			if _, ok := e.dirCache.lookup(s); !ok {
				need = append(need, s)
			}
		}
	}
	if len(need) < 2 {
		return nil
	}
	routes, err := e.dir.ResolveBatch(ctx, need)
	if err != nil && len(routes) == 0 {
		return nil
	}
	if e.dirCache != nil {
		for name, info := range routes {
			e.dirCache.store(name, info)
		}
	}
	return routes
}

// validGroupPattern requires exactly one "%s" verb and nothing else
// printf-like, so a bad pattern fails loudly instead of silently
// producing "%!s(MISSING)" service names.
func validGroupPattern(pattern string) error {
	if strings.Count(pattern, "%s") != 1 || strings.Count(pattern, "%") != 1 {
		return fmt.Errorf("engine: group pattern %q must contain exactly one %%s", pattern)
	}
	return nil
}

// InvokeGroupName resolves a directory group and group-invokes the
// given service pattern for each member. pattern must contain exactly
// one "%s" which is replaced by the member id (e.g. "cal.%s").
func (e *Engine) InvokeGroupName(ctx context.Context, group, pattern, method string, args wire.Args) ([]GroupResult, error) {
	if err := validGroupPattern(pattern); err != nil {
		return nil, err
	}
	members, err := e.dir.GroupMembers(ctx, group)
	if err != nil {
		return nil, err
	}
	services := make([]string, len(members))
	for i, m := range members {
		services[i] = fmt.Sprintf(pattern, m)
	}
	return e.GroupInvoke(ctx, services, method, args), nil
}

// OKCount counts successful members.
func OKCount(results []GroupResult) int {
	n := 0
	for _, r := range results {
		if r.Err == nil {
			n++
		}
	}
	return n
}

// AllOK reports whether every member succeeded.
func AllOK(results []GroupResult) bool { return OKCount(results) == len(results) }

// FirstError returns the first member error, or nil.
func FirstError(results []GroupResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("engine: %s: %w", r.Service, r.Err)
		}
	}
	return nil
}

// Collect decodes every successful member result into T, returning the
// values (in result order) and the services that failed — the typed
// half of the engine's "result aggregation".
func Collect[T any](results []GroupResult) (values []T, failed []string) {
	for _, r := range results {
		if r.Err != nil {
			failed = append(failed, r.Service)
			continue
		}
		var v T
		if err := wire.Unmarshal(r.Raw, &v); err != nil {
			failed = append(failed, r.Service)
			continue
		}
		values = append(values, v)
	}
	return values, failed
}

// Quorum reports whether at least k members succeeded.
func Quorum(results []GroupResult, k int) bool { return OKCount(results) >= k }
