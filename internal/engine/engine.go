// Package engine implements SyDEngine (paper §3.1c): it lets a node
// "execute single or group services remotely via SyDListener and
// aggregate results".
//
// The engine resolves service names through SyDDirectory, seals the
// caller's credential onto each request (§5.4), fails over to the
// owner's proxy when the device is down (§5.2), and fans group
// invocations out concurrently with result aggregation.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/auth"
	"repro/internal/directory"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Engine is a node's invocation client. Safe for concurrent use.
type Engine struct {
	net  transport.Network
	dir  *directory.Client
	self string

	mu         sync.RWMutex
	credential string // sealed, sent with every request
}

// New creates an engine for the user self.
func New(net transport.Network, dir *directory.Client, self string) *Engine {
	return &Engine{net: net, dir: dir, self: self}
}

// Self returns the engine's user identity.
func (e *Engine) Self() string { return e.self }

// Directory returns the engine's directory client.
func (e *Engine) Directory() *directory.Client { return e.dir }

// SetCredential seals user:password with the deployment sealer and
// attaches it to every subsequent request.
func (e *Engine) SetCredential(sealer *auth.Sealer, user, password string) error {
	cred, err := sealer.Seal(user, password)
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.credential = cred
	e.mu.Unlock()
	return nil
}

func (e *Engine) getCredential() string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.credential
}

// Invoke calls method on the named service, decoding the result into
// out (out may be nil). It resolves the service through the directory
// and falls back to the owner's proxy when the primary address is
// unreachable or the owner is known to be offline.
func (e *Engine) Invoke(ctx context.Context, service, method string, args wire.Args, out any) error {
	info, err := e.dir.LookupService(ctx, service)
	if err != nil {
		return err
	}

	// Prefer the device itself while it is online; otherwise go
	// straight to its proxy ("the proxy and the SyD object act as a
	// single entity for an outsider", §5.2).
	primary, fallback := info.Addr, info.Proxy
	if !info.OwnerOnline && info.Proxy != "" {
		primary, fallback = info.Proxy, info.Addr
	}

	err = e.InvokeAddr(ctx, primary, service, method, args, out)
	if err == nil || fallback == "" || fallback == primary {
		return err
	}
	if !isUnavailable(err) {
		return err
	}
	// Primary is gone: drop the cached lookup so future calls
	// re-resolve, then try the fallback.
	e.dir.Invalidate(service)
	return e.InvokeAddr(ctx, fallback, service, method, args, out)
}

// isUnavailable reports whether err means "the endpoint cannot be
// reached at all" (as opposed to the service answering with an error).
func isUnavailable(err error) bool {
	if errors.Is(err, transport.ErrUnreachable) {
		return true
	}
	return wire.CodeOf(err) == wire.CodeUnavailable
}

// InvokeAddr calls method on service at an explicit address, skipping
// directory resolution.
func (e *Engine) InvokeAddr(ctx context.Context, addr, service, method string, args wire.Args, out any) error {
	resp, err := e.net.Call(ctx, addr, &transport.Request{
		Service:    service,
		Method:     method,
		Args:       args,
		Caller:     e.self,
		Credential: e.getCredential(),
	})
	if err != nil {
		var re *wire.RemoteError
		if errors.As(err, &re) {
			return err
		}
		return fmt.Errorf("engine: call %s.%s at %s: %w", service, method, addr, err)
	}
	if !resp.OK {
		return &wire.RemoteError{Code: resp.Code, Service: service, Method: method, Msg: resp.Error}
	}
	if out != nil {
		if err := wire.Unmarshal(resp.Result, out); err != nil {
			return fmt.Errorf("engine: decode %s.%s result: %w", service, method, err)
		}
	}
	return nil
}

// GroupResult is one member's outcome in a group invocation.
type GroupResult struct {
	Service string
	Err     error
	Raw     json.RawMessage
}

// Decode unmarshals the member's result into v.
func (g *GroupResult) Decode(v any) error {
	if g.Err != nil {
		return g.Err
	}
	return wire.Unmarshal(g.Raw, v)
}

// GroupInvoke calls the same method with the same args on every listed
// service concurrently and returns per-member results in input order
// (the engine's "group service invocation and result aggregation").
func (e *Engine) GroupInvoke(ctx context.Context, services []string, method string, args wire.Args) []GroupResult {
	results := make([]GroupResult, len(services))
	var wg sync.WaitGroup
	for i, svc := range services {
		wg.Add(1)
		go func(i int, svc string) {
			defer wg.Done()
			var raw json.RawMessage
			err := e.Invoke(ctx, svc, method, args, &raw)
			results[i] = GroupResult{Service: svc, Err: err, Raw: raw}
		}(i, svc)
	}
	wg.Wait()
	return results
}

// InvokeGroupName resolves a directory group and group-invokes the
// given service pattern for each member. pattern must contain exactly
// one "%s" which is replaced by the member id (e.g. "cal.%s").
func (e *Engine) InvokeGroupName(ctx context.Context, group, pattern, method string, args wire.Args) ([]GroupResult, error) {
	members, err := e.dir.GroupMembers(ctx, group)
	if err != nil {
		return nil, err
	}
	services := make([]string, len(members))
	for i, m := range members {
		services[i] = fmt.Sprintf(pattern, m)
	}
	return e.GroupInvoke(ctx, services, method, args), nil
}

// OKCount counts successful members.
func OKCount(results []GroupResult) int {
	n := 0
	for _, r := range results {
		if r.Err == nil {
			n++
		}
	}
	return n
}

// AllOK reports whether every member succeeded.
func AllOK(results []GroupResult) bool { return OKCount(results) == len(results) }

// FirstError returns the first member error, or nil.
func FirstError(results []GroupResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("engine: %s: %w", r.Service, r.Err)
		}
	}
	return nil
}

// Collect decodes every successful member result into T, returning the
// values (in result order) and the services that failed — the typed
// half of the engine's "result aggregation".
func Collect[T any](results []GroupResult) (values []T, failed []string) {
	for _, r := range results {
		if r.Err != nil {
			failed = append(failed, r.Service)
			continue
		}
		var v T
		if err := wire.Unmarshal(r.Raw, &v); err != nil {
			failed = append(failed, r.Service)
			continue
		}
		values = append(values, v)
	}
	return values, failed
}

// Quorum reports whether at least k members succeeded.
func Quorum(results []GroupResult, k int) bool { return OKCount(results) >= k }
