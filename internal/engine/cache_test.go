package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/listener"
	"repro/internal/wire"
)

// cachedEngine builds an engine with a route cache driven by a
// controllable clock (now holds nanoseconds since the epoch).
func cachedEngine(w *testWorld, self string, ttl time.Duration, now *atomic.Int64) (*Engine, *DirCache) {
	cache := NewDirCache(ttl, WithDirCacheNow(func() time.Time {
		return time.Unix(0, now.Load())
	}))
	return New(w.net, w.dir, self, WithDirCache(cache)), cache
}

func TestDirCacheWarmPathSkipsDirectory(t *testing.T) {
	w := newWorld(t)
	w.addNode("phil")
	var now atomic.Int64
	e, cache := cachedEngine(w, "andy", time.Minute, &now)
	ctx := context.Background()

	// Cold call: one directory lookup + one invocation.
	w.net.ResetStats()
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := w.net.Stats().Requests; got != 2 {
		t.Fatalf("cold call made %d requests, want 2 (lookup + invoke)", got)
	}

	// Warm calls: zero directory traffic, exactly one request each.
	w.net.ResetStats()
	const warm = 10
	for i := 0; i < warm; i++ {
		if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.net.Stats().Requests; got != warm {
		t.Fatalf("warm calls made %d requests, want %d (no directory lookups)", got, warm)
	}
	st := cache.Stats()
	if st.Hits != warm || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want %d hits / 1 miss", st, warm)
	}
}

func TestDirCacheTTLExpiry(t *testing.T) {
	w := newWorld(t)
	w.addNode("phil")
	var now atomic.Int64
	e, cache := cachedEngine(w, "andy", time.Minute, &now)
	ctx := context.Background()

	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil); err != nil {
		t.Fatal(err)
	}
	// Within the TTL: served from cache.
	now.Store(int64(30 * time.Second))
	w.net.ResetStats()
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := w.net.Stats().Requests; got != 1 {
		t.Fatalf("within TTL made %d requests, want 1", got)
	}
	// Past the TTL: the entry expired, the next call re-resolves.
	now.Store(int64(2 * time.Minute))
	w.net.ResetStats()
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := w.net.Stats().Requests; got != 2 {
		t.Fatalf("past TTL made %d requests, want 2 (fresh lookup)", got)
	}
	if st := cache.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (cold + expired)", st.Misses)
	}
}

func TestDirCacheInvalidatedOnUnreachable(t *testing.T) {
	w := newWorld(t)
	w.addNode("phil")
	var now atomic.Int64
	e, cache := cachedEngine(w, "andy", time.Hour, &now)
	ctx := context.Background()

	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil); err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Size != 1 {
		t.Fatalf("route not cached: %+v", cache.Stats())
	}

	// Device vanishes: the failed call must drop the stale route.
	w.net.SetDown("node-phil", true)
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil); wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("err = %v", err)
	}
	st := cache.Stats()
	if st.Size != 0 || st.Invalidations != 1 {
		t.Fatalf("stale route survived unreachable: %+v", st)
	}

	// Device returns: the next call re-resolves and succeeds.
	w.net.SetDown("node-phil", false)
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirCacheBypassOnProxyFailover(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()

	// A proxy answering for phil's calendar (registered first so phil
	// adopts it).
	proxyL := listener.New("proxy-1", nil)
	proxyObj := listener.NewObject()
	proxyObj.Handle("WhoAmI", func(ctx context.Context, call *listener.Call) (any, error) {
		return map[string]string{"owner": "proxy-for-phil"}, nil
	})
	proxyL.Register("cal.phil", proxyObj)
	proxyLn, err := w.net.Listen("proxy-1", proxyL)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.dir.RegisterProxy(ctx, "p1", proxyLn.Addr()); err != nil {
		t.Fatal(err)
	}
	w.addNode("phil")

	var now atomic.Int64
	e, cache := cachedEngine(w, "andy", time.Hour, &now)

	// Cache the healthy route.
	var out map[string]string
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out["owner"] != "phil" {
		t.Fatalf("expected direct answer, got %v", out)
	}

	// Device dies; the cached (now stale) route is tried, the resolver
	// fails over to the proxy, and the cache drops the entry so the
	// next call does not trust the dead address again.
	w.net.SetDown("node-phil", true)
	out = nil
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out["owner"] != "proxy-for-phil" {
		t.Fatalf("expected proxy answer, got %v", out)
	}
	if st := cache.Stats(); st.Size != 0 || st.Invalidations == 0 {
		t.Fatalf("failover left the stale route cached: %+v", st)
	}
}

func TestDirCacheConcurrentInvokeAndInvalidate(t *testing.T) {
	// Race-detector stress: concurrent Invokes against concurrent
	// invalidation, TTL churn, and device flapping. Every call must
	// either succeed or fail unavailable, with no data races.
	w := newWorld(t)
	w.addNode("phil")
	var now atomic.Int64
	e, cache := cachedEngine(w, "andy", time.Hour, &now)
	ctx := context.Background()

	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cache.Invalidate("cal.phil")
			w.net.SetDown("node-phil", i%2 == 0)
			now.Add(int64(time.Second))
		}
	}()

	const goroutines = 8
	const iters = 50
	var unexpected atomic.Int64
	var invokers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		invokers.Add(1)
		go func() {
			defer invokers.Done()
			for i := 0; i < iters; i++ {
				err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil)
				if err != nil && wire.CodeOf(err) != wire.CodeUnavailable {
					unexpected.Add(1)
				}
			}
		}()
	}
	invokers.Wait()
	close(stop)
	flapper.Wait()
	if n := unexpected.Load(); n != 0 {
		t.Fatalf("%d calls failed with non-unavailable errors", n)
	}
	// Leave the device up: a final call must succeed end-to-end.
	w.net.SetDown("node-phil", false)
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirCacheSetEpochDropsStaleRoutes(t *testing.T) {
	w := newWorld(t)
	w.addNode("phil")
	var now atomic.Int64
	e, cache := cachedEngine(w, "andy", time.Hour, &now)
	ctx := context.Background()

	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil); err != nil {
		t.Fatal(err)
	}
	// Warm: no directory traffic.
	w.net.ResetStats()
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := w.net.Stats().Requests; got != 1 {
		t.Fatalf("warm call made %d requests, want 1", got)
	}

	// A shard-map epoch bump drops every cached route at once — the
	// TTL (an hour here) never comes into it.
	cache.SetEpoch(3)
	if cache.Epoch() != 3 {
		t.Fatalf("epoch = %d, want 3", cache.Epoch())
	}
	w.net.ResetStats()
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := w.net.Stats().Requests; got != 2 {
		t.Fatalf("post-bump call made %d requests, want 2 (re-resolve + invoke)", got)
	}
	if st := cache.Stats(); st.Invalidations == 0 {
		t.Fatal("epoch bump recorded no invalidations")
	}

	// Stale and duplicate epochs are no-ops: the refilled entry stays.
	cache.SetEpoch(2)
	cache.SetEpoch(3)
	w.net.ResetStats()
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := w.net.Stats().Requests; got != 1 {
		t.Fatalf("after stale epoch, call made %d requests, want 1 (still cached)", got)
	}
}
