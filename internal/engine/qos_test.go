package engine

import (
	"context"
	"repro/internal/clock"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/listener"
	"repro/internal/wire"
)

// flakyNode counts attempts and succeeds from attempt N on.
func (w *testWorld) addFlakyNode(user string, failFirst int) *atomic.Int64 {
	w.t.Helper()
	var attempts atomic.Int64
	l := listener.New(user, nil)
	obj := listener.NewObject()
	obj.Handle("Ping", func(ctx context.Context, call *listener.Call) (any, error) {
		n := attempts.Add(1)
		if int(n) <= failFirst {
			return nil, &wire.RemoteError{Code: wire.CodeUnavailable, Msg: "transient"}
		}
		return "pong", nil
	})
	obj.Handle("Conflict", func(ctx context.Context, call *listener.Call) (any, error) {
		attempts.Add(1)
		return nil, &wire.RemoteError{Code: wire.CodeConflict, Msg: "permanent"}
	})
	l.Register("flaky."+user, obj)
	ln, err := w.net.Listen("node-"+user, l)
	if err != nil {
		w.t.Fatal(err)
	}
	ctx := context.Background()
	if err := w.dir.RegisterUser(ctx, user, ln.Addr(), 0); err != nil {
		w.t.Fatal(err)
	}
	if err := l.PublishGlobal(ctx, w.dir, "flaky."+user, ln.Addr()); err != nil {
		w.t.Fatal(err)
	}
	return &attempts
}

func TestInvokeQoSRetriesTransientFailures(t *testing.T) {
	w := newWorld(t)
	attempts := w.addFlakyNode("phil", 2)
	e := New(w.net, w.dir, "andy")

	var out string
	err := e.InvokeQoS(context.Background(), QoS{Retries: 3}, "flaky.phil", "Ping", nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if out != "pong" || attempts.Load() != 3 {
		t.Fatalf("out=%q attempts=%d", out, attempts.Load())
	}
}

func TestInvokeQoSExhaustsRetries(t *testing.T) {
	w := newWorld(t)
	attempts := w.addFlakyNode("phil", 100)
	e := New(w.net, w.dir, "andy")
	err := e.InvokeQoS(context.Background(), QoS{Retries: 2}, "flaky.phil", "Ping", nil, nil)
	if wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("err = %v", err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempts = %d", attempts.Load())
	}
}

func TestInvokeQoSDoesNotRetryPermanentErrors(t *testing.T) {
	w := newWorld(t)
	attempts := w.addFlakyNode("phil", 0)
	e := New(w.net, w.dir, "andy")
	err := e.InvokeQoS(context.Background(), QoS{Retries: 5}, "flaky.phil", "Conflict", nil, nil)
	if wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("err = %v", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("permanent error retried %d times", attempts.Load())
	}
}

func TestInvokeQoSBestEffortIsSingleAttempt(t *testing.T) {
	w := newWorld(t)
	attempts := w.addFlakyNode("phil", 1)
	e := New(w.net, w.dir, "andy")
	err := e.InvokeQoS(context.Background(), BestEffort, "flaky.phil", "Ping", nil, nil)
	if wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("err = %v", err)
	}
	if attempts.Load() != 1 {
		t.Fatalf("attempts = %d", attempts.Load())
	}
}

func TestInvokeQoSRespectsContextCancel(t *testing.T) {
	w := newWorld(t)
	w.addFlakyNode("phil", 100)
	e := New(w.net, w.dir, "andy")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- e.InvokeQoS(ctx, QoS{Retries: 100, Backoff: time.Hour}, "flaky.phil", "Ping", nil, nil)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("InvokeQoS hung on cancelled context")
	}
}

func TestInvokeQoSRecoversAcrossReRegistration(t *testing.T) {
	// The device dies, then re-registers at a new address; QoS retry
	// with lookup invalidation finds it.
	w := newWorld(t)
	w.addNode("phil")
	e := New(w.net, w.dir, "andy")
	w.net.SetDown("node-phil", true)

	done := make(chan error, 1)
	go func() {
		done <- e.InvokeQoS(context.Background(), QoS{Retries: 20, Backoff: 5 * time.Millisecond},
			"cal.phil", "WhoAmI", nil, nil)
	}()
	time.Sleep(15 * time.Millisecond)
	w.net.SetDown("node-phil", false)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("retry never succeeded after device returned")
	}
}

func TestInvokeQoSBackoffUsesClock(t *testing.T) {
	// With a fake QoS clock, retries block until the clock advances —
	// proving the backoff waits (and doubles) rather than spinning.
	fake := clock.NewFake(time.Unix(0, 0))
	restore := SetQoSClock(fake)
	defer restore()

	w := newWorld(t)
	attempts := w.addFlakyNode("phil", 2)
	e := New(w.net, w.dir, "andy")

	done := make(chan error, 1)
	go func() {
		done <- e.InvokeQoS(context.Background(), QoS{Retries: 2, Backoff: time.Minute},
			"flaky.phil", "Ping", nil, nil)
	}()

	// First attempt happens immediately; then the retry waits on the
	// fake clock.
	waitAttempts := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for attempts.Load() < want {
			if time.Now().After(deadline) {
				t.Fatalf("attempts = %d, want %d", attempts.Load(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitAttempts(1)
	select {
	case err := <-done:
		t.Fatalf("returned before backoff elapsed: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	// Advance 1 minute -> second attempt; backoff doubles to 2m.
	for fake.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	fake.Advance(time.Minute)
	waitAttempts(2)
	for fake.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	fake.Advance(2 * time.Minute)
	waitAttempts(3)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("InvokeQoS never returned")
	}
}

func TestGroupInvokeQoS(t *testing.T) {
	w := newWorld(t)
	aAttempts := w.addFlakyNode("a", 1)
	bAttempts := w.addFlakyNode("b", 0)
	e := New(w.net, w.dir, "x")
	results := e.GroupInvokeQoS(context.Background(), QoS{Retries: 2},
		[]string{"flaky.a", "flaky.b"}, "Ping", nil)
	if !AllOK(results) {
		t.Fatalf("results = %+v", results)
	}
	if aAttempts.Load() != 2 || bAttempts.Load() != 1 {
		t.Fatalf("attempts a=%d b=%d", aAttempts.Load(), bAttempts.Load())
	}
}
