package engine

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/directory"
	"repro/internal/listener"
	"repro/internal/sim"
	"repro/internal/wire"
)

// testWorld is a sim network with a directory and helpers to add nodes.
type testWorld struct {
	t   *testing.T
	net *sim.Net
	dir *directory.Client
}

func newWorld(t *testing.T) *testWorld {
	t.Helper()
	net := sim.New(sim.Config{})
	srv := directory.NewServer(directory.WithTTL(time.Hour))
	ln, err := net.Listen("dir", srv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	return &testWorld{t: t, net: net, dir: directory.NewClient(net, ln.Addr())}
}

// addNode registers user on the network hosting a calendar-ish echo
// service named cal.<user>, and returns the node's listener.
func (w *testWorld) addNode(user string) *listener.Listener {
	w.t.Helper()
	l := listener.New(user, nil)
	obj := listener.NewObject()
	obj.Handle("WhoAmI", func(ctx context.Context, call *listener.Call) (any, error) {
		return map[string]string{"owner": user, "caller": call.Caller}, nil
	})
	obj.Handle("Add", func(ctx context.Context, call *listener.Call) (any, error) {
		return call.Args.Int("a") + call.Args.Int("b"), nil
	})
	obj.Handle("FailIf", func(ctx context.Context, call *listener.Call) (any, error) {
		if call.Args.String("who") == user {
			return nil, &wire.RemoteError{Code: wire.CodeConflict, Msg: "refused"}
		}
		return "ok", nil
	})
	l.Register("cal."+user, obj)
	ln, err := w.net.Listen("node-"+user, l)
	if err != nil {
		w.t.Fatal(err)
	}
	ctx := context.Background()
	if err := w.dir.RegisterUser(ctx, user, ln.Addr(), 0); err != nil {
		w.t.Fatal(err)
	}
	if err := l.PublishGlobal(ctx, w.dir, "cal."+user, ln.Addr()); err != nil {
		w.t.Fatal(err)
	}
	return l
}

func TestInvokeResolvesThroughDirectory(t *testing.T) {
	w := newWorld(t)
	w.addNode("phil")
	e := New(w.net, w.dir, "andy")

	var out map[string]string
	if err := e.Invoke(context.Background(), "cal.phil", "WhoAmI", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out["owner"] != "phil" || out["caller"] != "andy" {
		t.Fatalf("out = %v", out)
	}
}

func TestInvokeUnknownService(t *testing.T) {
	w := newWorld(t)
	e := New(w.net, w.dir, "andy")
	err := e.Invoke(context.Background(), "cal.ghost", "WhoAmI", nil, nil)
	if wire.CodeOf(err) != wire.CodeNoService {
		t.Fatalf("err = %v", err)
	}
}

func TestInvokeDecodesScalars(t *testing.T) {
	w := newWorld(t)
	w.addNode("phil")
	e := New(w.net, w.dir, "andy")
	var sum int
	if err := e.Invoke(context.Background(), "cal.phil", "Add", wire.Args{"a": 2, "b": 3}, &sum); err != nil {
		t.Fatal(err)
	}
	if sum != 5 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestInvokeRemoteErrorSurfaces(t *testing.T) {
	w := newWorld(t)
	w.addNode("phil")
	e := New(w.net, w.dir, "andy")
	err := e.Invoke(context.Background(), "cal.phil", "FailIf", wire.Args{"who": "phil"}, nil)
	if wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("err = %v", err)
	}
}

func TestProxyFailover(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()

	// A proxy node that answers for phil's calendar.
	proxyL := listener.New("proxy-1", nil)
	proxyObj := listener.NewObject()
	proxyObj.Handle("WhoAmI", func(ctx context.Context, call *listener.Call) (any, error) {
		return map[string]string{"owner": "proxy-for-phil", "caller": call.Caller}, nil
	})
	proxyL.Register("cal.phil", proxyObj)
	proxyLn, err := w.net.Listen("proxy-1", proxyL)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.dir.RegisterProxy(ctx, "p1", proxyLn.Addr()); err != nil {
		t.Fatal(err)
	}

	w.addNode("phil") // registered after the proxy so phil gets p1

	e := New(w.net, w.dir, "andy")
	var out map[string]string
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out["owner"] != "phil" {
		t.Fatalf("expected direct answer, got %v", out)
	}

	// Device disappears from the network: engine must fail over to
	// the proxy transparently.
	w.net.SetDown("node-phil", true)
	out = nil
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out["owner"] != "proxy-for-phil" {
		t.Fatalf("expected proxy answer, got %v", out)
	}
}

func TestProxyPreferredWhenOwnerMarkedOffline(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()

	proxyL := listener.New("proxy-1", nil)
	proxyObj := listener.NewObject()
	proxyObj.Handle("WhoAmI", func(ctx context.Context, call *listener.Call) (any, error) {
		return map[string]string{"owner": "proxy-for-phil"}, nil
	})
	proxyL.Register("cal.phil", proxyObj)
	proxyLn, err := w.net.Listen("proxy-1", proxyL)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.dir.RegisterProxy(ctx, "p1", proxyLn.Addr()); err != nil {
		t.Fatal(err)
	}
	w.addNode("phil")

	// phil announces a deliberate disconnect; the engine should go
	// straight to the proxy without probing the device.
	if err := w.dir.SetOffline(ctx, "phil", true); err != nil {
		t.Fatal(err)
	}
	before := w.net.Stats().Dropped
	e := New(w.net, w.dir, "andy")
	var out map[string]string
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out["owner"] != "proxy-for-phil" {
		t.Fatalf("out = %v", out)
	}
	if dropped := w.net.Stats().Dropped - before; dropped != 0 {
		t.Fatalf("engine probed the offline device (%d drops)", dropped)
	}
}

func TestInvokeNoProxyNoFailover(t *testing.T) {
	w := newWorld(t)
	w.addNode("phil")
	w.net.SetDown("node-phil", true)
	e := New(w.net, w.dir, "andy")
	err := e.Invoke(context.Background(), "cal.phil", "WhoAmI", nil, nil)
	if wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("err = %v", err)
	}
}

func TestGroupInvokeAggregates(t *testing.T) {
	w := newWorld(t)
	users := []string{"phil", "andy", "suzy"}
	for _, u := range users {
		w.addNode(u)
	}
	e := New(w.net, w.dir, "phil")
	services := []string{"cal.phil", "cal.andy", "cal.suzy"}
	results := e.GroupInvoke(context.Background(), services, "WhoAmI", nil)
	if len(results) != 3 || !AllOK(results) {
		t.Fatalf("results = %+v", results)
	}
	for i, r := range results {
		if r.Service != services[i] {
			t.Fatalf("result order broken: %v", results)
		}
		var out map[string]string
		if err := r.Decode(&out); err != nil {
			t.Fatal(err)
		}
		if out["owner"] != users[i] {
			t.Fatalf("member %d answered %v", i, out)
		}
	}
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
}

func TestGroupInvokePartialFailure(t *testing.T) {
	w := newWorld(t)
	for _, u := range []string{"phil", "andy", "suzy"} {
		w.addNode(u)
	}
	e := New(w.net, w.dir, "phil")
	services := []string{"cal.phil", "cal.andy", "cal.suzy"}
	results := e.GroupInvoke(context.Background(), services, "FailIf", wire.Args{"who": "andy"})
	if OKCount(results) != 2 || AllOK(results) {
		t.Fatalf("OKCount = %d", OKCount(results))
	}
	if results[1].Err == nil || wire.CodeOf(results[1].Err) != wire.CodeConflict {
		t.Fatalf("andy's result = %+v", results[1])
	}
	if err := FirstError(results); err == nil {
		t.Fatal("FirstError = nil")
	}
	if results[1].Decode(new(string)) == nil {
		t.Fatal("Decode on failed member should return the error")
	}
}

func TestInvokeGroupName(t *testing.T) {
	w := newWorld(t)
	for _, u := range []string{"alice", "bob"} {
		w.addNode(u)
	}
	ctx := context.Background()
	if err := w.dir.CreateGroup(ctx, "biology", []string{"alice", "bob"}); err != nil {
		t.Fatal(err)
	}
	e := New(w.net, w.dir, "phil")
	results, err := e.InvokeGroupName(ctx, "biology", "cal.%s", "WhoAmI", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || !AllOK(results) {
		t.Fatalf("results = %+v", results)
	}
}

func TestCollectAndQuorum(t *testing.T) {
	w := newWorld(t)
	for _, u := range []string{"phil", "andy", "suzy"} {
		w.addNode(u)
	}
	e := New(w.net, w.dir, "phil")
	services := []string{"cal.phil", "cal.andy", "cal.suzy"}
	results := e.GroupInvoke(context.Background(), services, "Add", wire.Args{"a": 2, "b": 3})
	sums, failed := Collect[int](results)
	if len(failed) != 0 || len(sums) != 3 {
		t.Fatalf("sums=%v failed=%v", sums, failed)
	}
	for _, s := range sums {
		if s != 5 {
			t.Fatalf("sums = %v", sums)
		}
	}
	if !Quorum(results, 3) || Quorum(results, 4) {
		t.Fatal("quorum arithmetic wrong")
	}

	// One member down: Collect reports it as failed, quorum adjusts.
	w.net.SetDown("node-andy", true)
	results = e.GroupInvoke(context.Background(), services, "Add", wire.Args{"a": 1, "b": 1})
	sums, failed = Collect[int](results)
	if len(sums) != 2 || len(failed) != 1 || failed[0] != "cal.andy" {
		t.Fatalf("sums=%v failed=%v", sums, failed)
	}
	if !Quorum(results, 2) || Quorum(results, 3) {
		t.Fatal("quorum after failure wrong")
	}
}

func TestCredentialAttached(t *testing.T) {
	// A node requiring auth accepts engine calls once the engine has
	// a sealed credential.
	net := sim.New(sim.Config{})
	srv := directory.NewServer(directory.WithTTL(time.Hour))
	dln, err := net.Listen("dir", srv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	dir := directory.NewClient(net, dln.Addr())

	an := auth.NewAuthenticator("deploy-key")
	an.Table.Add("andy", "pw")
	l := listener.New("phil", an)
	obj := listener.NewObject()
	obj.RequireAuth = true
	obj.Handle("WhoAmI", func(ctx context.Context, call *listener.Call) (any, error) {
		return call.Caller, nil
	})
	l.Register("cal.phil", obj)
	nln, err := net.Listen("node-phil", l)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := dir.RegisterUser(ctx, "phil", nln.Addr(), 0); err != nil {
		t.Fatal(err)
	}
	if err := l.PublishGlobal(ctx, dir, "cal.phil", nln.Addr()); err != nil {
		t.Fatal(err)
	}

	e := New(net, dir, "andy")
	// Without credential: rejected.
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, nil); wire.CodeOf(err) != wire.CodeAuth {
		t.Fatalf("unauthenticated err = %v", err)
	}
	if err := e.SetCredential(an.Sealer, "andy", "pw"); err != nil {
		t.Fatal(err)
	}
	var who string
	if err := e.Invoke(ctx, "cal.phil", "WhoAmI", nil, &who); err != nil {
		t.Fatal(err)
	}
	if who != "andy" {
		t.Fatalf("who = %q", who)
	}
}

func TestGroupInvokeScalesLinearlyInMessages(t *testing.T) {
	w := newWorld(t)
	var services []string
	const n = 8
	for i := 0; i < n; i++ {
		u := fmt.Sprintf("u%02d", i)
		w.addNode(u)
		services = append(services, "cal."+u)
	}
	w.net.ResetStats()
	e := New(w.net, w.dir, "phil")
	results := e.GroupInvoke(context.Background(), services, "WhoAmI", nil)
	if !AllOK(results) {
		t.Fatalf("results = %+v", results)
	}
	// One batched resolution pass + n invocations: group fan-out no
	// longer pays a directory round-trip per member.
	if got := w.net.Stats().Requests; got != n+1 {
		t.Fatalf("requests = %d, want %d", got, n+1)
	}
}

func BenchmarkEngineInvoke(b *testing.B) {
	net := sim.New(sim.Config{})
	srv := directory.NewServer(directory.WithTTL(time.Hour))
	dln, _ := net.Listen("dir", srv.Handler())
	dir := directory.NewClient(net, dln.Addr(), directory.WithCacheTTL(time.Minute))
	l := listener.New("phil", nil)
	obj := listener.NewObject()
	obj.Handle("Ping", func(ctx context.Context, call *listener.Call) (any, error) { return "pong", nil })
	l.Register("cal.phil", obj)
	nln, _ := net.Listen("node-phil", l)
	ctx := context.Background()
	if err := dir.RegisterUser(ctx, "phil", nln.Addr(), 0); err != nil {
		b.Fatal(err)
	}
	if err := l.PublishGlobal(ctx, dir, "cal.phil", nln.Addr()); err != nil {
		b.Fatal(err)
	}
	e := New(net, dir, "andy")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Invoke(ctx, "cal.phil", "Ping", nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}
