// Package listener implements SyDListener (paper §3.1b): it lets SyD
// device objects "publish services (server functionalities) as
// listeners locally on the device and globally via directory
// services", and dispatches inbound remote invocations to the
// registered method implementations.
//
// One Listener serves all device objects hosted on a node (a calendar
// object, the node's link manager, a proxy endpoint, ...). Dispatch
// flows through a Middleware chain — user middleware first, then the
// stock AuthMiddleware, then method lookup — so cross-cutting server
// behavior stays out of the transport plumbing.
package listener

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/auth"
	"repro/internal/directory"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Call carries one inbound invocation through the middleware chain to
// a Method.
type Call struct {
	// Service and Method name the invocation target.
	Service, Method string
	// Caller is the invoking SyD user. When the listener has an
	// authenticator and the service requires auth, Caller is the
	// *authenticated* identity, not the claimed one (user middleware
	// running outside AuthMiddleware sees the claimed identity).
	Caller string
	// Credential is the TEA-sealed credential blob presented by the
	// caller (empty for anonymous calls). AuthMiddleware verifies it
	// for objects that require auth.
	Credential string
	// Args are the named arguments.
	Args wire.Args
	// Meta is the request's wire metadata (request id, hop count,
	// deadline hint). Identity lives in the Caller/Credential fields.
	// The map is shared with the transport request — middleware and
	// handlers must treat it as read-only.
	Meta wire.Metadata
	// RequireAuth mirrors the target object's RequireAuth flag so
	// middleware can enforce or observe the auth requirement.
	RequireAuth bool

	obj *Object // dispatch target
}

// Method is a service method implementation. The returned value is
// JSON-encoded into the response.
type Method func(ctx context.Context, call *Call) (any, error)

// Object is a set of named methods published as one SyD device object.
type Object struct {
	// RequireAuth demands a valid credential on every request (§5.4).
	RequireAuth bool
	methods     map[string]Method
}

// NewObject creates an empty device object.
func NewObject() *Object {
	return &Object{methods: make(map[string]Method)}
}

// Handle registers a method on the object and returns the object for
// chaining.
func (o *Object) Handle(name string, m Method) *Object {
	o.methods[name] = m
	return o
}

// Methods lists the object's method names, sorted.
func (o *Object) Methods() []string {
	out := make([]string, 0, len(o.methods))
	for n := range o.methods {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Listener is a node's service registry + transport handler.
type Listener struct {
	owner  string
	authn  *auth.Authenticator // optional
	tracer *trace.Tracer       // optional

	mu       sync.RWMutex
	services map[string]*Object
	sink     func(*wire.Event)
	chain    []Middleware // user middleware, outermost first
	dispatch Method       // composed: chain → auth → method lookup
	fallback Fallback
}

// Fallback handles requests that name a service this listener does not
// host. It reports handled=false to fall through to the stock
// no-service error. A proxy host uses it to absorb updates addressed to
// an offline user it has not (yet) adopted.
type Fallback func(ctx context.Context, req *transport.Request) (result any, handled bool, err error)

// ListenerOption configures a Listener at construction time.
type ListenerOption func(*Listener)

// WithMiddleware appends server middleware to the listener's chain,
// outermost first, ahead of the stock AuthMiddleware.
func WithMiddleware(mw ...Middleware) ListenerOption {
	return func(l *Listener) { l.chain = append(l.chain, mw...) }
}

// WithTracer installs the node's tracer: a stock TraceMiddleware
// stage joins the dispatch chain, just outside AuthMiddleware.
func WithTracer(t *trace.Tracer) ListenerOption {
	return func(l *Listener) { l.tracer = t }
}

// New creates a Listener for the device owned by owner. authn may be
// nil when the deployment does not use authentication.
func New(owner string, authn *auth.Authenticator, opts ...ListenerOption) *Listener {
	l := &Listener{
		owner:    owner,
		authn:    authn,
		services: make(map[string]*Object),
	}
	for _, o := range opts {
		o(l)
	}
	l.rebuild()
	return l
}

// Use appends middleware to the listener's chain (outermost first,
// after any already installed). Typically called during node wiring,
// before traffic flows.
func (l *Listener) Use(mw ...Middleware) {
	l.mu.Lock()
	l.chain = append(l.chain, mw...)
	l.mu.Unlock()
	l.rebuild()
}

// rebuild recomposes the dispatch chain:
//
//	user middleware → TraceMiddleware → AuthMiddleware → method lookup + invoke
func (l *Listener) rebuild() {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := AuthMiddleware(l.authn)(l.terminal)
	if l.tracer != nil {
		m = TraceMiddleware(l.tracer)(m)
	}
	m = ChainMiddleware(l.chain...)(m)
	l.dispatch = m
}

// terminal is the chain's innermost stage: method lookup and
// invocation, with the request metadata attached to ctx so handlers
// that invoke other services propagate the correlation id and hop
// count automatically.
func (l *Listener) terminal(ctx context.Context, call *Call) (any, error) {
	m, ok := call.obj.methods[call.Method]
	if !ok {
		return nil, &wire.RemoteError{
			Code: wire.CodeNoMethod, Service: call.Service, Method: call.Method,
			Msg: fmt.Sprintf("service %q has no method %q", call.Service, call.Method),
		}
	}
	if call.Meta != nil {
		ctx = wire.WithContext(ctx, call.Meta)
	}
	return m(ctx, call)
}

// Owner returns the owning user id.
func (l *Listener) Owner() string { return l.owner }

// Register publishes obj locally under the service name. Registering
// the same name again replaces the object (a device restarting its
// application).
func (l *Listener) Register(service string, obj *Object) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.services[service] = obj
}

// SetFallback installs the handler consulted for unregistered services.
func (l *Listener) SetFallback(f Fallback) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fallback = f
}

// Unregister removes a local service.
func (l *Listener) Unregister(service string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.services, service)
}

// Services lists locally registered service names, sorted.
func (l *Listener) Services() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.services))
	for n := range l.services {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PublishGlobal registers service with the directory under this
// node's address, making it invokable by any SyD node (the "globally
// via directory services" half of the paper's listener).
func (l *Listener) PublishGlobal(ctx context.Context, dir *directory.Client, service, addr string) error {
	l.mu.RLock()
	obj, ok := l.services[service]
	l.mu.RUnlock()
	if !ok {
		return fmt.Errorf("listener: service %q not registered locally", service)
	}
	return dir.RegisterService(ctx, service, l.owner, addr, obj.Methods())
}

// SetEventSink wires inbound one-way events (global event delivery)
// to the node's event handler.
func (l *Listener) SetEventSink(sink func(*wire.Event)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = sink
}

// HandleEvent implements transport.Handler.
func (l *Listener) HandleEvent(ev *wire.Event) {
	l.mu.RLock()
	sink := l.sink
	l.mu.RUnlock()
	if sink != nil {
		sink(ev)
	}
}

// HandleRequest implements transport.Handler: find the service, run
// the middleware chain (auth, method dispatch, any installed user
// middleware), and encode the result.
func (l *Listener) HandleRequest(ctx context.Context, req *transport.Request) *transport.Response {
	l.mu.RLock()
	obj, ok := l.services[req.Service]
	dispatch := l.dispatch
	fb := l.fallback
	l.mu.RUnlock()
	if !ok {
		if fb != nil {
			if result, handled, err := fb(ctx, req); handled {
				if err != nil {
					code := wire.CodeInternal
					msg := err.Error()
					var re *wire.RemoteError
					if errors.As(err, &re) {
						code = re.Code
						msg = re.Msg
					}
					return l.stampMeta(req, transport.ErrorResponse(req, code, "%s", msg))
				}
				raw, merr := wire.Marshal(result)
				if merr != nil {
					return l.stampMeta(req, transport.ErrorResponse(req, wire.CodeInternal, "encode result: %v", merr))
				}
				return l.stampMeta(req, &transport.Response{ID: req.ID, OK: true, Result: raw})
			}
		}
		return l.stampMeta(req, transport.ErrorResponse(req, wire.CodeNoService, "node %s has no service %q", l.owner, req.Service))
	}

	// Re-arm the caller's deadline hint locally when the transport did
	// not propagate a context deadline (real TCP serves requests with
	// a background context).
	if d := req.Meta.Deadline(); d > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
	}

	call := &Call{
		Service:     req.Service,
		Method:      req.Method,
		Caller:      req.Caller,
		Credential:  req.Credential,
		Args:        req.Args,
		Meta:        req.Meta,
		RequireAuth: obj.RequireAuth,
		obj:         obj,
	}
	result, err := dispatch(ctx, call)
	if err != nil {
		code := wire.CodeInternal
		msg := err.Error()
		var re *wire.RemoteError
		if errors.As(err, &re) {
			code = re.Code
			msg = re.Msg // avoid re-wrapping already-remote errors
		}
		return l.stampMeta(req, transport.ErrorResponse(req, code, "%s", msg))
	}
	raw, err := wire.Marshal(result)
	if err != nil {
		return l.stampMeta(req, transport.ErrorResponse(req, wire.CodeInternal, "encode result: %v", err))
	}
	return l.stampMeta(req, &transport.Response{ID: req.ID, OK: true, Result: raw})
}

// stampMeta echoes the request's correlation id on the response.
func (l *Listener) stampMeta(req *transport.Request, resp *transport.Response) *transport.Response {
	if id := req.Meta.Get(wire.MetaRequestID); id != "" {
		resp.Meta = wire.Metadata{wire.MetaRequestID: id}
	}
	return resp
}

var _ transport.Handler = (*Listener)(nil)
