// Package listener implements SyDListener (paper §3.1b): it lets SyD
// device objects "publish services (server functionalities) as
// listeners locally on the device and globally via directory
// services", and dispatches inbound remote invocations to the
// registered method implementations.
//
// One Listener serves all device objects hosted on a node (a calendar
// object, the node's link manager, a proxy endpoint, ...).
package listener

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/auth"
	"repro/internal/directory"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Call carries one inbound invocation to a Method.
type Call struct {
	// Service and Method name the invocation target.
	Service, Method string
	// Caller is the invoking SyD user. When the listener has an
	// authenticator and the service requires auth, Caller is the
	// *authenticated* identity, not the claimed one.
	Caller string
	// Args are the named arguments.
	Args wire.Args
}

// Method is a service method implementation. The returned value is
// JSON-encoded into the response.
type Method func(ctx context.Context, call *Call) (any, error)

// Object is a set of named methods published as one SyD device object.
type Object struct {
	// RequireAuth demands a valid credential on every request (§5.4).
	RequireAuth bool
	methods     map[string]Method
}

// NewObject creates an empty device object.
func NewObject() *Object {
	return &Object{methods: make(map[string]Method)}
}

// Handle registers a method on the object and returns the object for
// chaining.
func (o *Object) Handle(name string, m Method) *Object {
	o.methods[name] = m
	return o
}

// Methods lists the object's method names, sorted.
func (o *Object) Methods() []string {
	out := make([]string, 0, len(o.methods))
	for n := range o.methods {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Listener is a node's service registry + transport handler.
type Listener struct {
	owner string
	authn *auth.Authenticator // optional

	mu       sync.RWMutex
	services map[string]*Object
	sink     func(*wire.Event)
}

// New creates a Listener for the device owned by owner. authn may be
// nil when the deployment does not use authentication.
func New(owner string, authn *auth.Authenticator) *Listener {
	return &Listener{
		owner:    owner,
		authn:    authn,
		services: make(map[string]*Object),
	}
}

// Owner returns the owning user id.
func (l *Listener) Owner() string { return l.owner }

// Register publishes obj locally under the service name. Registering
// the same name again replaces the object (a device restarting its
// application).
func (l *Listener) Register(service string, obj *Object) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.services[service] = obj
}

// Unregister removes a local service.
func (l *Listener) Unregister(service string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.services, service)
}

// Services lists locally registered service names, sorted.
func (l *Listener) Services() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.services))
	for n := range l.services {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PublishGlobal registers service with the directory under this
// node's address, making it invokable by any SyD node (the "globally
// via directory services" half of the paper's listener).
func (l *Listener) PublishGlobal(ctx context.Context, dir *directory.Client, service, addr string) error {
	l.mu.RLock()
	obj, ok := l.services[service]
	l.mu.RUnlock()
	if !ok {
		return fmt.Errorf("listener: service %q not registered locally", service)
	}
	return dir.RegisterService(ctx, service, l.owner, addr, obj.Methods())
}

// SetEventSink wires inbound one-way events (global event delivery)
// to the node's event handler.
func (l *Listener) SetEventSink(sink func(*wire.Event)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = sink
}

// HandleEvent implements transport.Handler.
func (l *Listener) HandleEvent(ev *wire.Event) {
	l.mu.RLock()
	sink := l.sink
	l.mu.RUnlock()
	if sink != nil {
		sink(ev)
	}
}

// HandleRequest implements transport.Handler: authenticate if needed,
// find the service and method, run it, and encode the result.
func (l *Listener) HandleRequest(ctx context.Context, req *transport.Request) *transport.Response {
	l.mu.RLock()
	obj, ok := l.services[req.Service]
	l.mu.RUnlock()
	if !ok {
		return transport.ErrorResponse(req, wire.CodeNoService, "node %s has no service %q", l.owner, req.Service)
	}

	caller := req.Caller
	if obj.RequireAuth {
		if l.authn == nil {
			return transport.ErrorResponse(req, wire.CodeAuth, "service %q requires auth but node has no authenticator", req.Service)
		}
		user, err := l.authn.Verify(req.Credential)
		if err != nil {
			return transport.ErrorResponse(req, wire.CodeAuth, "authentication failed: %v", err)
		}
		caller = user
	}

	m, ok := obj.methods[req.Method]
	if !ok {
		return transport.ErrorResponse(req, wire.CodeNoMethod, "service %q has no method %q", req.Service, req.Method)
	}

	result, err := m(ctx, &Call{
		Service: req.Service,
		Method:  req.Method,
		Caller:  caller,
		Args:    req.Args,
	})
	if err != nil {
		code := wire.CodeInternal
		msg := err.Error()
		var re *wire.RemoteError
		if errors.As(err, &re) {
			code = re.Code
			msg = re.Msg // avoid re-wrapping already-remote errors
		}
		return transport.ErrorResponse(req, code, "%s", msg)
	}
	raw, err := wire.Marshal(result)
	if err != nil {
		return transport.ErrorResponse(req, wire.CodeInternal, "encode result: %v", err)
	}
	return &transport.Response{ID: req.ID, OK: true, Result: raw}
}

var _ transport.Handler = (*Listener)(nil)
