package listener

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/auth"
	"repro/internal/directory"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

func echoObject() *Object {
	obj := NewObject()
	obj.Handle("Echo", func(ctx context.Context, call *Call) (any, error) {
		return map[string]any{"caller": call.Caller, "x": call.Args.String("x")}, nil
	})
	obj.Handle("Fail", func(ctx context.Context, call *Call) (any, error) {
		return nil, errors.New("boom")
	})
	obj.Handle("Conflict", func(ctx context.Context, call *Call) (any, error) {
		return nil, &wire.RemoteError{Code: wire.CodeConflict, Msg: "slot taken"}
	})
	return obj
}

func TestDispatchAndResult(t *testing.T) {
	l := New("phil", nil)
	l.Register("cal.phil", echoObject())

	resp := l.HandleRequest(context.Background(), &transport.Request{
		ID: 1, Service: "cal.phil", Method: "Echo",
		Args: wire.Args{"x": "hi"}, Caller: "andy",
	})
	if !resp.OK {
		t.Fatalf("resp = %+v", resp)
	}
	var out map[string]string
	if err := wire.Unmarshal(resp.Result, &out); err != nil {
		t.Fatal(err)
	}
	if out["x"] != "hi" || out["caller"] != "andy" {
		t.Fatalf("out = %v", out)
	}
}

func TestUnknownServiceAndMethod(t *testing.T) {
	l := New("phil", nil)
	l.Register("cal.phil", echoObject())

	resp := l.HandleRequest(context.Background(), &transport.Request{Service: "nope", Method: "Echo"})
	if resp.OK || resp.Code != wire.CodeNoService {
		t.Fatalf("resp = %+v", resp)
	}
	resp = l.HandleRequest(context.Background(), &transport.Request{Service: "cal.phil", Method: "Nope"})
	if resp.OK || resp.Code != wire.CodeNoMethod {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestMethodErrorMapping(t *testing.T) {
	l := New("phil", nil)
	l.Register("cal.phil", echoObject())

	resp := l.HandleRequest(context.Background(), &transport.Request{Service: "cal.phil", Method: "Fail"})
	if resp.OK || resp.Code != wire.CodeInternal {
		t.Fatalf("plain error: %+v", resp)
	}
	resp = l.HandleRequest(context.Background(), &transport.Request{Service: "cal.phil", Method: "Conflict"})
	if resp.OK || resp.Code != wire.CodeConflict {
		t.Fatalf("typed error: %+v", resp)
	}
}

func TestAuthRequired(t *testing.T) {
	an := auth.NewAuthenticator("deploy-key")
	an.Table.Add("andy", "pw")
	l := New("phil", an)
	obj := echoObject()
	obj.RequireAuth = true
	l.Register("cal.phil", obj)

	// No credential.
	resp := l.HandleRequest(context.Background(), &transport.Request{
		Service: "cal.phil", Method: "Echo", Caller: "andy",
	})
	if resp.OK || resp.Code != wire.CodeAuth {
		t.Fatalf("no credential: %+v", resp)
	}

	// Valid credential; caller identity comes from the credential,
	// not the claimed Caller field.
	cred, err := an.Sealer.Seal("andy", "pw")
	if err != nil {
		t.Fatal(err)
	}
	resp = l.HandleRequest(context.Background(), &transport.Request{
		Service: "cal.phil", Method: "Echo", Caller: "someone-else",
		Credential: cred, Args: wire.Args{"x": "hi"},
	})
	if !resp.OK {
		t.Fatalf("valid credential rejected: %+v", resp)
	}
	var out map[string]string
	if err := wire.Unmarshal(resp.Result, &out); err != nil {
		t.Fatal(err)
	}
	if out["caller"] != "andy" {
		t.Fatalf("caller = %q, want authenticated identity", out["caller"])
	}

	// Wrong password.
	bad, err := an.Sealer.Seal("andy", "wrong")
	if err != nil {
		t.Fatal(err)
	}
	resp = l.HandleRequest(context.Background(), &transport.Request{
		Service: "cal.phil", Method: "Echo", Credential: bad,
	})
	if resp.OK || resp.Code != wire.CodeAuth {
		t.Fatalf("wrong password: %+v", resp)
	}
}

func TestAuthRequiredWithoutAuthenticator(t *testing.T) {
	l := New("phil", nil)
	obj := echoObject()
	obj.RequireAuth = true
	l.Register("cal.phil", obj)
	resp := l.HandleRequest(context.Background(), &transport.Request{Service: "cal.phil", Method: "Echo"})
	if resp.OK || resp.Code != wire.CodeAuth {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestRegisterReplaceUnregister(t *testing.T) {
	l := New("phil", nil)
	l.Register("cal.phil", echoObject())
	obj2 := NewObject().Handle("Only", func(ctx context.Context, call *Call) (any, error) { return 1, nil })
	l.Register("cal.phil", obj2)

	resp := l.HandleRequest(context.Background(), &transport.Request{Service: "cal.phil", Method: "Echo"})
	if resp.Code != wire.CodeNoMethod {
		t.Fatalf("replaced object still has old method: %+v", resp)
	}
	l.Unregister("cal.phil")
	resp = l.HandleRequest(context.Background(), &transport.Request{Service: "cal.phil", Method: "Only"})
	if resp.Code != wire.CodeNoService {
		t.Fatalf("unregistered service still answers: %+v", resp)
	}
}

func TestServicesAndMethodsSorted(t *testing.T) {
	l := New("phil", nil)
	l.Register("b", NewObject())
	l.Register("a", NewObject())
	if got := l.Services(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("services = %v", got)
	}
	obj := NewObject().
		Handle("Zed", func(ctx context.Context, c *Call) (any, error) { return nil, nil }).
		Handle("Alpha", func(ctx context.Context, c *Call) (any, error) { return nil, nil })
	if got := obj.Methods(); !reflect.DeepEqual(got, []string{"Alpha", "Zed"}) {
		t.Fatalf("methods = %v", got)
	}
}

func TestEventSink(t *testing.T) {
	l := New("phil", nil)
	got := make(chan *wire.Event, 1)
	l.SetEventSink(func(ev *wire.Event) { got <- ev })
	l.HandleEvent(&wire.Event{Name: "link.expired"})
	select {
	case ev := <-got:
		if ev.Name != "link.expired" {
			t.Fatalf("ev = %+v", ev)
		}
	default:
		t.Fatal("sink not called")
	}
	// Without a sink events are dropped silently.
	l2 := New("x", nil)
	l2.HandleEvent(&wire.Event{Name: "ignored"}) // must not panic
}

func TestPublishGlobal(t *testing.T) {
	net := sim.New(sim.Config{})
	srv := directory.NewServer()
	ln, err := net.Listen("dir", srv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	dir := directory.NewClient(net, ln.Addr())

	l := New("phil", nil)
	l.Register("cal.phil", echoObject())
	nodeLn, err := net.Listen("node-phil", l)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := l.PublishGlobal(ctx, dir, "cal.phil", nodeLn.Addr()); err != nil {
		t.Fatal(err)
	}
	info, err := dir.LookupService(ctx, "cal.phil")
	if err != nil {
		t.Fatal(err)
	}
	if info.Addr != "node-phil" || info.Owner != "phil" {
		t.Fatalf("info = %+v", info)
	}
	if !reflect.DeepEqual(info.Methods, []string{"Conflict", "Echo", "Fail"}) {
		t.Fatalf("methods = %v", info.Methods)
	}
	// Publishing an unregistered service fails.
	if err := l.PublishGlobal(ctx, dir, "nope", nodeLn.Addr()); err == nil {
		t.Fatal("published unknown service")
	}
}
