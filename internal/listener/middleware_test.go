package listener

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/wire"
)

func TestMiddlewareOrderAndUse(t *testing.T) {
	var trace []string
	tag := func(name string) Middleware {
		return func(next Method) Method {
			return func(ctx context.Context, call *Call) (any, error) {
				trace = append(trace, name+":pre")
				res, err := next(ctx, call)
				trace = append(trace, name+":post")
				return res, err
			}
		}
	}
	l := New("phil", nil, WithMiddleware(tag("a"), tag("b")))
	l.Use(tag("c"))
	l.Register("cal.phil", echoObject())

	resp := l.HandleRequest(context.Background(), &transport.Request{Service: "cal.phil", Method: "Echo"})
	if !resp.OK {
		t.Fatalf("resp = %+v", resp)
	}
	want := []string{"a:pre", "b:pre", "c:pre", "c:post", "b:post", "a:post"}
	if fmt.Sprint(trace) != fmt.Sprint(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestMiddlewareSeesClaimedCallerBeforeAuth(t *testing.T) {
	// User middleware runs outside AuthMiddleware: it observes the
	// claimed identity, while the method sees the authenticated one.
	an := auth.NewAuthenticator("deploy-key")
	an.Table.Add("andy", "pw")

	var claimed string
	l := New("phil", an, WithMiddleware(func(next Method) Method {
		return func(ctx context.Context, call *Call) (any, error) {
			claimed = call.Caller
			return next(ctx, call)
		}
	}))
	obj := echoObject()
	obj.RequireAuth = true
	l.Register("cal.phil", obj)

	cred, err := an.Sealer.Seal("andy", "pw")
	if err != nil {
		t.Fatal(err)
	}
	resp := l.HandleRequest(context.Background(), &transport.Request{
		Service: "cal.phil", Method: "Echo", Caller: "someone-else", Credential: cred,
	})
	if !resp.OK {
		t.Fatalf("resp = %+v", resp)
	}
	if claimed != "someone-else" {
		t.Fatalf("middleware saw %q, want the claimed identity", claimed)
	}
	var out map[string]string
	if err := wire.Unmarshal(resp.Result, &out); err != nil {
		t.Fatal(err)
	}
	if out["caller"] != "andy" {
		t.Fatalf("method saw %q, want the authenticated identity", out["caller"])
	}
}

func TestMetricsMiddlewareRecordsServerSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	l := New("phil", nil, WithMiddleware(MetricsMiddleware(reg)))
	l.Register("cal.phil", echoObject())
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if resp := l.HandleRequest(ctx, &transport.Request{Service: "cal.phil", Method: "Echo"}); !resp.OK {
			t.Fatalf("resp = %+v", resp)
		}
	}
	l.HandleRequest(ctx, &transport.Request{Service: "cal.phil", Method: "Conflict"})
	l.HandleRequest(ctx, &transport.Request{Service: "cal.phil", Method: "Missing"})

	snap := reg.Snapshot()
	if e := snap.Find(metrics.LayerServer, "cal.phil", "Echo", ""); e == nil || e.Count != 2 {
		t.Fatalf("Echo series = %+v", e)
	}
	if e := snap.Find(metrics.LayerServer, "cal.phil", "Conflict", wire.CodeConflict); e == nil || e.Count != 1 {
		t.Fatalf("Conflict series = %+v", e)
	}
	// Unknown methods still flow through the chain and get counted.
	if e := snap.Find(metrics.LayerServer, "cal.phil", "Missing", wire.CodeNoMethod); e == nil || e.Count != 1 {
		t.Fatalf("Missing series = %+v", e)
	}
}

func TestDeadlineHintReArmsContext(t *testing.T) {
	l := New("phil", nil)
	obj := NewObject()
	var hadDeadline bool
	var budget time.Duration
	obj.Handle("Probe", func(ctx context.Context, call *Call) (any, error) {
		d, ok := ctx.Deadline()
		hadDeadline = ok
		budget = time.Until(d)
		return nil, nil
	})
	l.Register("cal.phil", obj)

	md := wire.Metadata{}
	md.SetDeadline(500 * time.Millisecond)
	resp := l.HandleRequest(context.Background(), &transport.Request{
		Service: "cal.phil", Method: "Probe", Meta: md,
	})
	if !resp.OK {
		t.Fatalf("resp = %+v", resp)
	}
	if !hadDeadline || budget <= 0 || budget > 500*time.Millisecond {
		t.Fatalf("hadDeadline=%v budget=%v, want a fresh deadline ≤500ms", hadDeadline, budget)
	}

	// A transport-provided deadline wins over the hint.
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	resp = l.HandleRequest(ctx, &transport.Request{Service: "cal.phil", Method: "Probe", Meta: md})
	if !resp.OK {
		t.Fatalf("resp = %+v", resp)
	}
	if budget < time.Minute {
		t.Fatalf("hint overrode the transport deadline: budget=%v", budget)
	}
}

func TestResponseEchoesRequestID(t *testing.T) {
	l := New("phil", nil)
	l.Register("cal.phil", echoObject())

	req := &transport.Request{
		Service: "cal.phil", Method: "Echo",
		Meta: wire.Metadata{wire.MetaRequestID: "andy-42"},
	}
	resp := l.HandleRequest(context.Background(), req)
	if resp.Meta.Get(wire.MetaRequestID) != "andy-42" {
		t.Fatalf("response meta = %v", resp.Meta)
	}
	// Errors carry the correlation id too.
	resp = l.HandleRequest(context.Background(), &transport.Request{
		Service: "nope", Method: "Echo",
		Meta: wire.Metadata{wire.MetaRequestID: "andy-43"},
	})
	if resp.OK || resp.Meta.Get(wire.MetaRequestID) != "andy-43" {
		t.Fatalf("error response meta = %+v", resp)
	}
}

func TestIntrospectionObject(t *testing.T) {
	reg := metrics.NewRegistry()
	l := New("phil", nil, WithMiddleware(MetricsMiddleware(reg)))
	l.Register("cal.phil", echoObject())
	l.Register("sys.phil", Introspection(l, reg, nil))
	ctx := context.Background()

	// Generate one observation, then inspect through the service itself.
	if resp := l.HandleRequest(ctx, &transport.Request{Service: "cal.phil", Method: "Echo"}); !resp.OK {
		t.Fatalf("resp = %+v", resp)
	}

	resp := l.HandleRequest(ctx, &transport.Request{Service: "sys.phil", Method: "Services"})
	if !resp.OK {
		t.Fatalf("Services: %+v", resp)
	}
	var services []string
	if err := wire.Unmarshal(resp.Result, &services); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(services) != fmt.Sprint([]string{"cal.phil", "sys.phil"}) {
		t.Fatalf("services = %v", services)
	}

	resp = l.HandleRequest(ctx, &transport.Request{
		Service: "sys.phil", Method: "Methods", Args: wire.Args{"service": "cal.phil"},
	})
	if !resp.OK {
		t.Fatalf("Methods: %+v", resp)
	}
	var methods []string
	if err := wire.Unmarshal(resp.Result, &methods); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(methods) != fmt.Sprint([]string{"Conflict", "Echo", "Fail"}) {
		t.Fatalf("methods = %v", methods)
	}
	resp = l.HandleRequest(ctx, &transport.Request{
		Service: "sys.phil", Method: "Methods", Args: wire.Args{"service": "ghost"},
	})
	if resp.OK || resp.Code != wire.CodeNoService {
		t.Fatalf("Methods(ghost): %+v", resp)
	}

	resp = l.HandleRequest(ctx, &transport.Request{Service: "sys.phil", Method: "Metrics"})
	if !resp.OK {
		t.Fatalf("Metrics: %+v", resp)
	}
	var snap metrics.Snapshot
	if err := wire.Unmarshal(resp.Result, &snap); err != nil {
		t.Fatal(err)
	}
	if e := snap.Find(metrics.LayerServer, "cal.phil", "Echo", ""); e == nil || e.Count != 1 {
		t.Fatalf("introspected snapshot = %+v", snap)
	}
}
