package listener

import (
	"context"
	"fmt"
	"time"

	"repro/internal/auth"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Middleware wraps a Method with cross-cutting server-side behavior
// (auth, metrics, logging). Middleware composes like HTTP middleware:
// the first middleware in a chain is outermost. Every inbound
// invocation flows through the listener's chain before reaching the
// registered method.
type Middleware func(next Method) Method

// ChainMiddleware composes mw into one Middleware (mw[0] outermost).
// An empty chain is the identity.
func ChainMiddleware(mw ...Middleware) Middleware {
	return func(next Method) Method {
		for i := len(mw) - 1; i >= 0; i-- {
			next = mw[i](next)
		}
		return next
	}
}

// AuthMiddleware enforces per-object credential checks (§5.4) — the
// middleware form of the auth logic HandleRequest used to hard-code.
// For objects that set RequireAuth it verifies the TEA-sealed
// credential and replaces the claimed caller with the authenticated
// identity; other objects pass through untouched. The listener
// installs it automatically, innermost, so user middleware observes
// the pre-auth call and the method sees the verified one.
func AuthMiddleware(authn *auth.Authenticator) Middleware {
	return func(next Method) Method {
		return func(ctx context.Context, call *Call) (any, error) {
			if !call.RequireAuth {
				return next(ctx, call)
			}
			if authn == nil {
				return nil, &wire.RemoteError{
					Code: wire.CodeAuth, Service: call.Service, Method: call.Method,
					Msg: fmt.Sprintf("service %q requires auth but node has no authenticator", call.Service),
				}
			}
			user, err := authn.Verify(call.Credential)
			if err != nil {
				return nil, &wire.RemoteError{
					Code: wire.CodeAuth, Service: call.Service, Method: call.Method,
					Msg: fmt.Sprintf("authentication failed: %v", err),
				}
			}
			call.Caller = user
			return next(ctx, call)
		}
	}
}

// TraceMiddleware opens one server span per dispatched invocation,
// continuing the trace carried in the request metadata (trace-id /
// span-id injected by the client's TraceInterceptor) or rooting a new
// one when the caller was untraced. The span rides ctx, so handlers
// that invoke onward — the links manager marking participants, a
// trigger firing — hang their spans underneath it.
func TraceMiddleware(t *trace.Tracer) Middleware {
	return func(next Method) Method {
		return func(ctx context.Context, call *Call) (any, error) {
			ctx, s := t.StartRemote(ctx, "rpc.server", call.Meta)
			if s == nil {
				return next(ctx, call)
			}
			s.Annotate(trace.String("service", call.Service), trace.String("method", call.Method))
			result, err := next(ctx, call)
			s.FinishErr(err)
			return result, err
		}
	}
}

// MetricsMiddleware records per-(service, method, error-code) counts
// and latency for every dispatched invocation, including auth
// rejections and unknown-method errors surfaced beneath it.
func MetricsMiddleware(reg *metrics.Registry) Middleware {
	return func(next Method) Method {
		return func(ctx context.Context, call *Call) (any, error) {
			start := time.Now()
			result, err := next(ctx, call)
			reg.Observe(metrics.LayerServer, call.Service, call.Method, wire.CodeOf(err), time.Since(start))
			return result, err
		}
	}
}

// Introspection builds the sys.<owner> device object: the listener's
// runtime state published as an ordinary SyD service, so any peer can
// remotely inspect what a node serves and how it is performing.
//
//	Services  -> sorted service names registered on the listener
//	Methods   -> {"service": name} -> sorted method names
//	Metrics   -> metrics.Snapshot of reg (empty when reg is nil)
//	Traces    -> the node tracer's retained spans + drop counter
func Introspection(l *Listener, reg *metrics.Registry, tr *trace.Tracer) *Object {
	obj := NewObject()
	obj.Handle("Services", func(ctx context.Context, call *Call) (any, error) {
		return l.Services(), nil
	})
	obj.Handle("Methods", func(ctx context.Context, call *Call) (any, error) {
		name := call.Args.String("service")
		l.mu.RLock()
		target, ok := l.services[name]
		l.mu.RUnlock()
		if !ok {
			return nil, &wire.RemoteError{
				Code: wire.CodeNoService, Service: call.Service, Method: call.Method,
				Msg: fmt.Sprintf("node %s has no service %q", l.owner, name),
			}
		}
		return target.Methods(), nil
	})
	obj.Handle("Metrics", func(ctx context.Context, call *Call) (any, error) {
		return reg.Snapshot(), nil
	})
	obj.Handle("Traces", func(ctx context.Context, call *Call) (any, error) {
		spans := tr.Snapshot()
		if max := call.Args.Int("max"); max > 0 && len(spans) > max {
			spans = spans[len(spans)-max:]
		}
		return map[string]any{
			"node":    tr.Node(),
			"dropped": tr.Dropped(),
			"spans":   spans,
		}, nil
	})
	return obj
}
