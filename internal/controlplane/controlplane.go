// Package controlplane owns the directory's shard topology: which
// shard nodes exist, which key ranges each one serves, and the epoch
// that versions every published routing table.
//
// The directory itself (internal/directory) is the data plane — it
// answers bind/lookup RPCs. The control plane is deliberately thin:
// it holds one authoritative Table (an epoch plus the shard list),
// hands it to anyone who asks (ShardMap RPC), and bumps the epoch
// whenever the topology — or anything routing-relevant — changes.
// Clients cache the table and route each directory op to the shard
// that owns the op's key; data-plane responses carry the shard's
// current epoch, so a client holding a stale table notices on its
// very next RPC and refreshes immediately instead of waiting out a
// TTL.
//
// Key → shard assignment is consistent hashing over a ring of virtual
// points, so both sides of the protocol can compute ownership locally
// from the shard list alone: the table ships only {epoch, shards} and
// never a key-range manifest.
package controlplane

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/transport"
	"repro/internal/wire"
)

// ServiceName is the service identifier the control plane answers to.
const ServiceName = "syd.control"

// ringReplicas is the number of virtual points each shard contributes
// to the hash ring. 64 keeps the key distribution within a few percent
// of uniform for small shard counts while the ring stays tiny.
const ringReplicas = 64

// Shard is one directory shard node as published in the table.
type Shard struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Table is one epoch-versioned routing table: the shard list plus the
// consistent-hash ring derived from it. Tables are immutable once
// built — the controller publishes a fresh Table on every change.
type Table struct {
	Epoch  uint64
	Shards []Shard

	ring []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int // index into Shards
}

// NewTable builds the routing table for a shard list at an epoch,
// deriving the hash ring. The shard list is copied.
func NewTable(epoch uint64, shards []Shard) *Table {
	t := &Table{Epoch: epoch, Shards: append([]Shard(nil), shards...)}
	t.ring = make([]ringPoint, 0, len(t.Shards)*ringReplicas)
	for i, s := range t.Shards {
		for r := 0; r < ringReplicas; r++ {
			t.ring = append(t.ring, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", s.ID, r)), shard: i})
		}
	}
	sort.Slice(t.ring, func(i, j int) bool { return t.ring[i].hash < t.ring[j].hash })
	return t
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	// FNV clusters near-identical keys (user ids and service names are
	// sequential, short, and share long prefixes); a murmur3-style
	// finalizer avalanches the bits so ring placement is uniform.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the shard that owns key: the first ring point at or
// after the key's hash, wrapping. A single-shard table owns all keys.
func (t *Table) Owner(key string) Shard {
	if len(t.Shards) == 1 {
		return t.Shards[0]
	}
	h := hashKey(key)
	i := sort.Search(len(t.ring), func(i int) bool { return t.ring[i].hash >= h })
	if i == len(t.ring) {
		i = 0
	}
	return t.Shards[t.ring[i].shard]
}

// Owns reports whether shardID owns key under this table.
func (t *Table) Owns(shardID, key string) bool { return t.Owner(key).ID == shardID }

// Addrs returns every shard address, in shard order.
func (t *Table) Addrs() []string {
	out := make([]string, len(t.Shards))
	for i, s := range t.Shards {
		out[i] = s.Addr
	}
	return out
}

// tableWire is the JSON shape of a Table on the wire (the ring is
// recomputed by the receiver).
type tableWire struct {
	Epoch  uint64  `json:"epoch"`
	Shards []Shard `json:"shards"`
}

// --- controller ------------------------------------------------------------

// Controller is the authoritative control-plane node: it owns the
// current Table and publishes a fresh one (epoch+1) on every change.
// In-process shard servers subscribe to receive each new table
// synchronously; remote clients pull via the ShardMap RPC.
type Controller struct {
	mu    sync.Mutex
	table *Table
	subs  []func(*Table)
}

// NewController creates a controller publishing the given shards at
// epoch 1.
func NewController(shards []Shard) *Controller {
	return &Controller{table: NewTable(1, shards)}
}

// Current returns the latest published table.
func (c *Controller) Current() *Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.table
}

// Subscribe registers fn to be called (synchronously, in publish
// order) with the current table now and with every future one.
func (c *Controller) Subscribe(fn func(*Table)) {
	c.mu.Lock()
	c.subs = append(c.subs, fn)
	t := c.table
	c.mu.Unlock()
	fn(t)
}

// publish installs a new table and fans it out to subscribers.
func (c *Controller) publish(t *Table) {
	c.mu.Lock()
	c.table = t
	subs := append([]func(*Table){}, c.subs...)
	c.mu.Unlock()
	for _, fn := range subs {
		fn(t)
	}
}

// Bump republishes the current shard list under epoch+1 — the
// invalidation broadcast: every data-plane response starts carrying
// the new epoch, so clients drop their cached routes at the next RPC.
func (c *Controller) Bump() uint64 {
	c.mu.Lock()
	next := NewTable(c.table.Epoch+1, c.table.Shards)
	c.mu.Unlock()
	c.publish(next)
	return next.Epoch
}

// SetShards replaces the shard list and publishes it under epoch+1.
func (c *Controller) SetShards(shards []Shard) uint64 {
	c.mu.Lock()
	next := NewTable(c.table.Epoch+1, shards)
	c.mu.Unlock()
	c.publish(next)
	return next.Epoch
}

// Handler returns the transport.Handler serving the control-plane
// RPCs: ShardMap (pull the table) and Bump (force an epoch advance).
func (c *Controller) Handler() transport.Handler {
	return transport.HandlerFunc(func(ctx context.Context, req *transport.Request) *transport.Response {
		ok := func(v any) *transport.Response {
			raw, err := wire.Marshal(v)
			if err != nil {
				return transport.ErrorResponse(req, wire.CodeInternal, "encode: %v", err)
			}
			return &transport.Response{ID: req.ID, OK: true, Result: raw}
		}
		switch req.Method {
		case "ShardMap":
			t := c.Current()
			return ok(tableWire{Epoch: t.Epoch, Shards: t.Shards})
		case "Bump":
			return ok(c.Bump())
		default:
			return transport.ErrorResponse(req, wire.CodeNoMethod, "control plane has no method %q", req.Method)
		}
	})
}

// --- client ----------------------------------------------------------------

// Client is the typed stub directory clients use to pull routing
// tables from the control plane.
type Client struct {
	net  transport.Network
	addr string
}

// NewClient creates a control-plane client for the controller at addr.
func NewClient(net transport.Network, addr string) *Client {
	return &Client{net: net, addr: addr}
}

// Addr returns the control plane's network address.
func (c *Client) Addr() string { return c.addr }

func (c *Client) call(ctx context.Context, method string, out any) error {
	resp, err := c.net.Call(ctx, c.addr, &transport.Request{
		Service: ServiceName,
		Method:  method,
	})
	if err != nil {
		return fmt.Errorf("controlplane %s: %w", method, err)
	}
	if !resp.OK {
		return &wire.RemoteError{Code: resp.Code, Service: ServiceName, Method: method, Msg: resp.Error}
	}
	if out != nil {
		return wire.Unmarshal(resp.Result, out)
	}
	return nil
}

// ShardMap pulls the current routing table.
func (c *Client) ShardMap(ctx context.Context) (*Table, error) {
	var w tableWire
	if err := c.call(ctx, "ShardMap", &w); err != nil {
		return nil, err
	}
	if len(w.Shards) == 0 {
		return nil, fmt.Errorf("controlplane: empty shard map")
	}
	return NewTable(w.Epoch, w.Shards), nil
}

// Bump forces an epoch advance and returns the new epoch.
func (c *Client) Bump(ctx context.Context) (uint64, error) {
	var epoch uint64
	err := c.call(ctx, "Bump", &epoch)
	return epoch, err
}
