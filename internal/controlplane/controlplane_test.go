package controlplane

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/sim"
)

func fourShards() []Shard {
	return []Shard{
		{ID: "shard0", Addr: "dir0"},
		{ID: "shard1", Addr: "dir1"},
		{ID: "shard2", Addr: "dir2"},
		{ID: "shard3", Addr: "dir3"},
	}
}

func TestOwnerDeterministicAndStable(t *testing.T) {
	a := NewTable(1, fourShards())
	b := NewTable(7, fourShards()) // epoch does not affect placement
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("user%03d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("placement of %q varies with epoch", key)
		}
		if !a.Owns(a.Owner(key).ID, key) {
			t.Fatalf("Owns disagrees with Owner for %q", key)
		}
	}
}

func TestOwnerDistribution(t *testing.T) {
	tab := NewTable(1, fourShards())
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[tab.Owner(fmt.Sprintf("u%04d", i)).ID]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d shards received keys: %v", len(counts), counts)
	}
	for id, n := range counts {
		// Consistent hashing with 64 virtual points is lumpy but every
		// shard must carry a real share (within 3x of fair).
		if n < keys/12 || n > keys*3/4 {
			t.Fatalf("shard %s holds %d/%d keys: %v", id, n, keys, counts)
		}
	}
}

func TestSingleShardOwnsEverything(t *testing.T) {
	tab := NewTable(1, []Shard{{ID: "only", Addr: "dir"}})
	for _, k := range []string{"", "a", "cal.phil", "team"} {
		if tab.Owner(k).ID != "only" {
			t.Fatalf("key %q not owned by the single shard", k)
		}
	}
}

func TestShardRemovalMovesOnlyItsKeys(t *testing.T) {
	before := NewTable(1, fourShards())
	after := NewTable(2, fourShards()[:3]) // shard3 removed
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("k%04d", i)
		was, is := before.Owner(key), after.Owner(key)
		if was.ID != "shard3" && was != is {
			t.Fatalf("key %q moved from surviving shard %s to %s", key, was.ID, is.ID)
		}
		if was.ID == "shard3" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("removed shard owned no keys — distribution test should have caught this")
	}
}

func TestControllerPublishAndBump(t *testing.T) {
	ctl := NewController(fourShards())
	var got []*Table
	ctl.Subscribe(func(tab *Table) { got = append(got, tab) })
	if len(got) != 1 || got[0].Epoch != 1 {
		t.Fatalf("subscribe did not deliver the current table: %v", got)
	}
	if e := ctl.Bump(); e != 2 {
		t.Fatalf("Bump = %d, want 2", e)
	}
	if e := ctl.SetShards(fourShards()[:2]); e != 3 {
		t.Fatalf("SetShards = %d, want 3", e)
	}
	if len(got) != 3 || got[2].Epoch != 3 || len(got[2].Shards) != 2 {
		t.Fatalf("subscriber missed publishes: %+v", got)
	}
}

func TestClientShardMapAndBumpOverRPC(t *testing.T) {
	net := sim.New(sim.Config{})
	ctl := NewController(fourShards())
	if _, err := net.Listen("cp", ctl.Handler()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c := NewClient(net, "cp")
	tab, err := c.ShardMap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Epoch != 1 || len(tab.Shards) != 4 {
		t.Fatalf("table = %+v", tab)
	}
	// The pulled table routes identically to the authoritative one.
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("svc%d", i)
		if tab.Owner(key) != ctl.Current().Owner(key) {
			t.Fatalf("pulled table disagrees on %q", key)
		}
	}
	epoch, err := c.Bump(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("Bump over RPC = %d, want 2", epoch)
	}
	tab2, err := c.ShardMap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Epoch != 2 {
		t.Fatalf("epoch after bump = %d", tab2.Epoch)
	}
}
