package transport

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

func traceMeta(i int) wire.Metadata {
	return wire.Metadata{
		trace.MetaTraceID:      fmt.Sprintf("%016x", 0xabc0+i),
		trace.MetaSpanID:       fmt.Sprintf("%016x", 0xdef0+i),
		trace.MetaParentSpanID: fmt.Sprintf("%016x", 0x1230+i),
		trace.MetaSampled:      "1",
	}
}

// TestTraceMetadataSurvivesCoalescedFrames hammers one TCP connection
// with concurrent calls — the path where the write coalescer batches
// many frames into one syscall — and asserts every request's trace
// context arrives byte-identical, never smeared across the frames that
// shared a flush.
func TestTraceMetadataSurvivesCoalescedFrames(t *testing.T) {
	for _, codec := range []wire.Codec{wire.CodecJSON, wire.CodecV3} {
		t.Run(codec.String(), func(t *testing.T) { testTraceMetaCoalesced(t, codec) })
	}
}

func testTraceMetaCoalesced(t *testing.T, codec wire.Codec) {
	net, addr := newTCPPairCodec(t, metaHandler{}, codec)
	ctx := context.Background()

	// With v3 configured, the first call negotiates the upgrade so the
	// concurrent storm below exercises v3-encoded coalesced frames,
	// not the JSON advertisement path.
	if _, err := net.Call(ctx, addr, &Request{Service: "echo", Method: "meta", Meta: traceMeta(999)}); err != nil {
		t.Fatal(err)
	}

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			md := traceMeta(i)
			resp, err := net.Call(ctx, addr, &Request{
				Service: "echo", Method: "meta", Meta: md.Clone(),
			})
			if err != nil {
				errs[i] = err
				return
			}
			var seen wire.Metadata
			if err := wire.Unmarshal(resp.Result, &seen); err != nil {
				errs[i] = err
				return
			}
			for _, key := range []string{trace.MetaTraceID, trace.MetaSpanID, trace.MetaParentSpanID, trace.MetaSampled} {
				if seen.Get(key) != md.Get(key) {
					errs[i] = fmt.Errorf("call %d: %s = %q, want %q", i, key, seen.Get(key), md.Get(key))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestTraceMetadataSurvivesReconnect restarts the server so the cached
// client connection dies, then asserts the transparent reconnect path
// carries the trace context byte-identically too.
func TestTraceMetadataSurvivesReconnect(t *testing.T) {
	for _, codec := range []wire.Codec{wire.CodecJSON, wire.CodecV3} {
		t.Run(codec.String(), func(t *testing.T) { testTraceMetaReconnect(t, codec) })
	}
}

func testTraceMetaReconnect(t *testing.T, codec wire.Codec) {
	h := metaHandler{}
	net := NewTCP(WithWireCodec(codec))
	defer net.Close()
	ln, err := net.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()

	check := func(i int) {
		t.Helper()
		md := traceMeta(i)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		resp, err := net.Call(ctx, addr, &Request{Service: "echo", Method: "meta", Meta: md.Clone()})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		var seen wire.Metadata
		if err := wire.Unmarshal(resp.Result, &seen); err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{trace.MetaTraceID, trace.MetaSpanID, trace.MetaParentSpanID, trace.MetaSampled} {
			if seen.Get(key) != md.Get(key) {
				t.Fatalf("call %d: %s = %q, want %q", i, key, seen.Get(key), md.Get(key))
			}
		}
	}

	check(0)
	ln.Close()
	ln2, err := net.Listen(addr, h)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer ln2.Close()
	check(1)
}
