package transport

import (
	"context"
	"net"
	"testing"

	"repro/internal/wire"
)

// newTCPPairCodec is newTCPPair with a configured wire codec on both
// the client and server roles of the returned network.
func newTCPPairCodec(t *testing.T, h Handler, codec wire.Codec) (*TCP, string) {
	t.Helper()
	tn := NewTCP(WithWireCodec(codec))
	ln, err := tn.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ln.Close()
		tn.Close()
	})
	return tn, ln.Addr()
}

// clientConnsV3 reports the negotiated state of every live pooled
// client connection to addr: total live conns and how many have
// latched peerV3.
func clientConnsV3(t *testing.T, tn *TCP, addr string) (live, v3 int) {
	t.Helper()
	tn.mu.Lock()
	p := tn.pools[addr]
	tn.mu.Unlock()
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.slots {
		if c == nil || c.isDead() {
			continue
		}
		live++
		if c.peerV3.Load() {
			v3++
		}
	}
	return live, v3
}

// TestCodecNegotiationUpgradesToV3: a v3 client talking to a v3 server
// starts in JSON carrying the advertisement, receives a v3 response,
// and flips every pooled connection to v3 sends — while every call's
// payload round-trips intact.
func TestCodecNegotiationUpgradesToV3(t *testing.T) {
	h := &echoHandler{}
	tn, addr := newTCPPairCodec(t, h, wire.CodecV3)
	ctx := context.Background()

	// Enough sequential calls to cycle through every pool slot twice:
	// call k negotiates slot k%size, call k+size uses it upgraded.
	for i := 0; i < 2*tn.poolSize+2; i++ {
		resp, err := tn.Call(ctx, addr, &Request{
			Service: "echo", Method: "ping", Args: wire.Args{"i": i, "s": "x"},
		})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		var out map[string]any
		if err := wire.Unmarshal(resp.Result, &out); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if wire.Args(out).Int("i") != i {
			t.Fatalf("call %d echoed %v", i, out)
		}
	}
	live, v3 := clientConnsV3(t, tn, addr)
	if live == 0 || v3 != live {
		t.Fatalf("want every live client conn upgraded to v3, have %d/%d", v3, live)
	}
}

// TestCodecMixedFleetV3ClientJSONServer: a v3-configured client against
// a JSON-only server (old fleet member) must negotiate down cleanly —
// all calls succeed over JSON and no connection ever upgrades.
func TestCodecMixedFleetV3ClientJSONServer(t *testing.T) {
	h := &echoHandler{}
	// Server role: default JSON-only config.
	server := NewTCP()
	ln, err := server.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	defer server.Close()

	client := NewTCP(WithWireCodec(wire.CodecV3))
	defer client.Close()
	ctx := context.Background()
	for i := 0; i < 2*client.poolSize+2; i++ {
		resp, err := client.Call(ctx, ln.Addr(), &Request{
			Service: "echo", Method: "ping", Args: wire.Args{"i": i},
		})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		var out map[string]any
		if err := wire.Unmarshal(resp.Result, &out); err != nil || wire.Args(out).Int("i") != i {
			t.Fatalf("call %d echoed %v (%v)", i, out, err)
		}
	}
	live, v3 := clientConnsV3(t, client, ln.Addr())
	if live == 0 || v3 != 0 {
		t.Fatalf("JSON-only server must keep the fleet on JSON: %d/%d conns upgraded", v3, live)
	}
}

// TestCodecMixedFleetJSONClientV3Server: the inverse — an old JSON
// client against a v3-configured server. The client never advertises,
// so the server must answer in JSON.
func TestCodecMixedFleetJSONClientV3Server(t *testing.T) {
	h := &echoHandler{}
	server := NewTCP(WithWireCodec(wire.CodecV3))
	ln, err := server.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	defer server.Close()

	// Raw frame-level client: speaks only JSON, observes the exact
	// bytes the server sends back.
	conn, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fr := wire.NewFrameReader(conn)
	for i := 1; i <= 3; i++ {
		env := &wire.Envelope{Kind: wire.KindRequest, Request: &wire.Request{
			ID: uint64(i), Service: "echo", Method: "ping", Args: wire.Args{"i": i},
		}}
		if err := wire.WriteFrame(conn, env); err != nil {
			t.Fatal(err)
		}
		got, err := fr.Read()
		if err != nil {
			t.Fatal(err)
		}
		if fr.LastCodec != wire.CodecJSON {
			t.Fatalf("response %d encoded as %s; a non-advertising client must get JSON", i, fr.LastCodec)
		}
		if got.Response == nil || got.Response.ID != uint64(i) || !got.Response.OK {
			t.Fatalf("response %d: %+v", i, got.Response)
		}
	}
}

// TestCodecAdvertisementTriggersV3Response pins the server half of the
// handshake at the frame level: a JSON request that carries the
// MetaWireCodec advertisement gets a v3-encoded response from a
// v3-configured server.
func TestCodecAdvertisementTriggersV3Response(t *testing.T) {
	h := &echoHandler{}
	server := NewTCP(WithWireCodec(wire.CodecV3))
	ln, err := server.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	defer server.Close()

	conn, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	env := &wire.Envelope{Kind: wire.KindRequest, Request: &wire.Request{
		ID: 1, Service: "echo", Method: "ping",
		Args: wire.Args{"x": "y"},
		Meta: wire.Metadata{wire.MetaWireCodec: wire.WireCodecV3},
	}}
	if err := wire.WriteFrame(conn, env); err != nil { // JSON body + advert
		t.Fatal(err)
	}
	fr := wire.NewFrameReader(conn)
	got, err := fr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if fr.LastCodec != wire.CodecV3 {
		t.Fatalf("response codec = %s, want v3 after advertisement", fr.LastCodec)
	}
	if got.Response == nil || !got.Response.OK || got.Response.ID != 1 {
		t.Fatalf("response: %+v", got.Response)
	}
}
