package transport

import (
	"io"
	"sync"

	"repro/internal/metrics"
)

// coalescer batches the encoded frames of concurrent writers into
// single socket writes, the same group-commit shape internal/wal uses
// for fsyncs: while one writer's syscall is in flight, later writers
// append their frames to a staging buffer; whoever finds the wire free
// next drains the whole batch with one Write. Callers return only
// after the write that carried their frame completes, so the
// at-most-once delivery semantics of the v1 per-frame path are
// preserved — a nil return still means "handed to the kernel".
//
// Under no contention the fast path degenerates to exactly one
// syscall per frame with no extra copies beyond the staging append.
type coalescer struct {
	w     io.Writer // the socket; never written without holding the flush token
	stats *metrics.WireStats

	mu      sync.Mutex
	cond    *sync.Cond
	buf     []byte // staging buffer for the generation currently accepting frames
	frames  int    // frames staged in buf
	spare   []byte // recycled staging buffer for the next generation
	inFlush bool   // a flush syscall is in flight
	gen     uint64 // generation currently accepting frames
	done    uint64 // highest generation fully flushed
	err     error  // first write error; terminal
}

// maxStagingBuf caps recycled staging buffers (mirrors the wire
// package's pool cap) so one burst of huge frames does not pin memory
// for the connection's lifetime.
const maxStagingBuf = 256 << 10

func newCoalescer(w io.Writer, stats *metrics.WireStats) *coalescer {
	// gen starts at 1 so that done (0) is strictly behind the first
	// generation accepting frames.
	c := &coalescer{w: w, stats: stats, gen: 1}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// write stages frame and returns once a flush that included it has
// completed (or failed). frame is fully copied before write returns
// control to the coalescer, so callers may release pooled buffers
// immediately afterwards. flushed reports how many frames the caller's
// own flush carried when it became the leader (0 when its bytes rode a
// peer's syscall) — tracing uses it to mark coalesced writes.
func (c *coalescer) write(frame []byte) (flushed int, err error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, err
	}
	c.buf = append(c.buf, frame...)
	c.frames++
	myGen := c.gen
	c.stats.RecordSend(1, len(frame))

	// If an earlier generation's syscall is in flight our bytes ride
	// the next flush; wait for the wire to free up (or for a peer from
	// our generation to have flushed us).
	for c.err == nil && c.done < myGen && c.inFlush {
		c.cond.Wait()
	}
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, err
	}
	if c.done >= myGen {
		// A writer from this generation already drained the batch,
		// our frame included.
		c.mu.Unlock()
		return 0, nil
	}

	// Become the flush leader for this generation: swap the staging
	// buffer so later writers stage the next batch while our syscall
	// runs.
	out, n := c.buf, c.frames
	c.buf, c.spare = c.spare[:0], nil
	c.frames = 0
	c.inFlush = true
	c.gen++
	c.mu.Unlock()

	_, werr := c.w.Write(out)

	c.mu.Lock()
	c.inFlush = false
	c.done = myGen
	if werr != nil && c.err == nil {
		c.err = werr
	}
	if cap(out) <= maxStagingBuf && c.spare == nil {
		c.spare = out[:0]
	}
	c.stats.RecordFlush(n)
	err = c.err
	c.cond.Broadcast()
	c.mu.Unlock()
	return n, err
}

// fail marks the coalescer dead (connection torn down) and wakes every
// waiter with err.
func (c *coalescer) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}
