package transport

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// TestTCPSendReconnectAfterServerRestart pins the Send half of the
// reconnect semantics: after the server restarts, the first Send on
// the stale pooled connection must transparently redial instead of
// silently losing the event.
func TestTCPSendReconnectAfterServerRestart(t *testing.T) {
	h := &echoHandler{}
	net := NewTCP(WithPoolSize(1))
	defer net.Close()
	ln, err := net.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()

	// Prime the pooled connection.
	if err := net.Send(context.Background(), addr, &Event{Name: "warm"}); err != nil {
		t.Fatal(err)
	}
	waitForEvents(t, h, 1)

	ln.Close()
	ln2, err := net.Listen(addr, h)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer ln2.Close()

	// The cached connection is dead. Send must notice and redial —
	// possibly needing one attempt that only discovers the dead conn.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := net.Send(context.Background(), addr, &Event{Name: "after-restart"})
		if err == nil && h.events.Load() >= 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("event not delivered after restart (err=%v, events=%d)", err, h.events.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitForEvents(t *testing.T, h *echoHandler, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for h.events.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("events = %d, want >= %d", h.events.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPPoolSpreadsConnections verifies that the per-peer pool
// actually opens multiple connections and spreads calls across them.
func TestTCPPoolSpreadsConnections(t *testing.T) {
	h := HandlerFunc(func(ctx context.Context, req *Request) *Response {
		return &Response{ID: req.ID, OK: true}
	})
	net := NewTCP(WithPoolSize(3))
	defer net.Close()
	ln, err := net.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	tl := ln.(*tcpListener)
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		if _, err := net.Call(ctx, ln.Addr(), &Request{Service: "s", Method: "m"}); err != nil {
			t.Fatal(err)
		}
	}
	tl.mu.Lock()
	serverConns := len(tl.conns)
	tl.mu.Unlock()
	if serverConns != 3 {
		t.Fatalf("server sees %d connections, want 3 (pool size)", serverConns)
	}
}

// TestTCPCancelledCallDoesNotLoseLateResponse drives the cancel/deliver
// race: a caller whose context fires while the response is already in
// readLoop's hands must receive that response (the entry left pending)
// rather than dropping it.
func TestTCPCancelledCallDoesNotLoseLateResponse(t *testing.T) {
	h := &echoHandler{delay: 5 * time.Millisecond}
	net, addr := newTCPPair(t, h)

	var lost atomic.Int64
	var got atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Deadline tuned to land right around response delivery.
			ctx, cancel := context.WithTimeout(context.Background(), h.delay+time.Duration(i%5)*time.Millisecond)
			defer cancel()
			resp, err := net.Call(ctx, addr, &Request{Service: "echo", Method: "ping", Args: wire.Args{"i": i}})
			switch {
			case err == nil:
				var out map[string]int
				if wire.Unmarshal(resp.Result, &out) != nil || out["i"] != i {
					lost.Add(1) // wrong response would be worse than none
				} else {
					got.Add(1)
				}
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, ErrUnreachable):
				// Acceptable: genuinely timed out before delivery.
			default:
				t.Errorf("call %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if lost.Load() > 0 {
		t.Fatalf("%d cross-wired responses", lost.Load())
	}
}

// TestTCPStress mixes concurrent Calls, Sends, a server restart, and
// Close under the race detector, asserting that every acked response
// was real and that no goroutines leak.
func TestTCPStress(t *testing.T) {
	baseline := runtime.NumGoroutine()

	h := &echoHandler{}
	cli := NewTCP(WithPoolSize(2), WithWireStats(&metrics.WireStats{}))
	srv := NewTCP(WithWireStats(&metrics.WireStats{}))
	ln, err := srv.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()

	const workers = 16
	const callsPerWorker = 50
	var acked atomic.Int64
	var wrong atomic.Int64
	var wg sync.WaitGroup

	stopRestarts := make(chan struct{})
	var restartWG sync.WaitGroup
	restartWG.Add(1)
	go func() {
		defer restartWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopRestarts:
				return
			case <-time.After(30 * time.Millisecond):
			}
			ln.Close()
			nl, err := srv.Listen(addr, h)
			if err != nil {
				// Port momentarily unavailable; retry next tick.
				continue
			}
			ln = nl
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < callsPerWorker; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				n := w*callsPerWorker + i
				if n%7 == 0 {
					_ = cli.Send(ctx, addr, &Event{Name: "tick"})
					cancel()
					continue
				}
				resp, err := cli.Call(ctx, addr, &Request{Service: "echo", Method: "ping", Args: wire.Args{"n": n}})
				cancel()
				if err != nil {
					continue // restarts make some failures legitimate
				}
				var out map[string]int
				if wire.Unmarshal(resp.Result, &out) != nil || out["n"] != n {
					wrong.Add(1)
				} else {
					acked.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopRestarts)
	restartWG.Wait()

	if wrong.Load() > 0 {
		t.Fatalf("%d acked responses carried the wrong payload", wrong.Load())
	}
	if acked.Load() == 0 {
		t.Fatal("no call ever succeeded; stress loop is not exercising the path")
	}

	ln.Close()
	cli.Close()
	srv.Close()

	// All readLoops, serve goroutines, and coalescer waiters must wind
	// down: goroutine count returns to (near) baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTCPCoalescingBatchesFrames asserts that concurrent callers on a
// real socket share flush syscalls once the kernel send buffer pushes
// back. Large payloads make the Write syscalls slow enough that
// writers genuinely pile up behind the in-flight flush (with tiny
// frames on loopback, writes complete faster than contention can form
// — coalesce_test.go covers the mechanism deterministically).
func TestTCPCoalescingBatchesFrames(t *testing.T) {
	stats := &metrics.WireStats{}
	h := &echoHandler{}
	cli := NewTCP(WithPoolSize(1), WithWireStats(stats))
	defer cli.Close()
	srv := NewTCP(WithWireStats(&metrics.WireStats{}))
	ln, err := srv.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// NUL bytes JSON-escape to six bytes apiece, so this payload is both
	// large on the wire (~96KB/frame) and slow to decode in the server's
	// read loop — the decode stall is what lets the kernel send buffer
	// fill and writers pile up behind a blocked flush.
	payload := strings.Repeat("\x00", 16<<10)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := cli.Call(context.Background(), ln.Addr(), &Request{
				Service: "echo", Method: "ping", Args: wire.Args{"i": i, "pad": payload},
			})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	snap := stats.Snapshot()
	if snap.FramesSent < n {
		t.Fatalf("framesSent = %d, want >= %d", snap.FramesSent, n)
	}
	if snap.BatchMax < 2 {
		t.Fatalf("batchMax = %d: concurrent writers never shared a flush", snap.BatchMax)
	}
}
