package transport

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// echoHandler answers every request with its own args echoed back and
// records events.
type echoHandler struct {
	events atomic.Int64
	delay  time.Duration
}

func (h *echoHandler) HandleRequest(ctx context.Context, req *Request) *Response {
	if h.delay > 0 {
		time.Sleep(h.delay)
	}
	res, _ := wire.Marshal(req.Args)
	return &Response{ID: req.ID, OK: true, Result: res}
}

func (h *echoHandler) HandleEvent(ev *Event) { h.events.Add(1) }

func newTCPPair(t *testing.T, h Handler) (*TCP, string) {
	t.Helper()
	net := NewTCP()
	ln, err := net.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ln.Close()
		net.Close()
	})
	return net, ln.Addr()
}

func TestTCPCallRoundTrip(t *testing.T) {
	h := &echoHandler{}
	net, addr := newTCPPair(t, h)

	resp, err := net.Call(context.Background(), addr, &Request{
		Service: "echo", Method: "ping", Args: wire.Args{"x": "hello"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("response not OK: %+v", resp)
	}
	var out map[string]string
	if err := wire.Unmarshal(resp.Result, &out); err != nil {
		t.Fatal(err)
	}
	if out["x"] != "hello" {
		t.Fatalf("echo = %v", out)
	}
}

func TestTCPConcurrentCallsMultiplexed(t *testing.T) {
	h := &echoHandler{delay: 2 * time.Millisecond}
	net, addr := newTCPPair(t, h)

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := net.Call(context.Background(), addr, &Request{
				Service: "echo", Method: "ping", Args: wire.Args{"i": i},
			})
			if err != nil {
				errs[i] = err
				return
			}
			var out map[string]int
			if err := wire.Unmarshal(resp.Result, &out); err != nil {
				errs[i] = err
				return
			}
			if out["i"] != i {
				errs[i] = errors.New("cross-talk between multiplexed calls")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestTCPCallUnreachable(t *testing.T) {
	net := NewTCP()
	defer net.Close()
	_, err := net.Call(context.Background(), "127.0.0.1:1", &Request{Service: "s", Method: "m"})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestTCPCallContextTimeout(t *testing.T) {
	h := &echoHandler{delay: 2 * time.Second}
	net, addr := newTCPPair(t, h)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := net.Call(ctx, addr, &Request{Service: "echo", Method: "ping"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestTCPSendEvent(t *testing.T) {
	h := &echoHandler{}
	net, addr := newTCPPair(t, h)

	if err := net.Send(context.Background(), addr, &Event{Name: "tick"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.events.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("event never delivered")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPReconnectAfterServerRestart(t *testing.T) {
	h := &echoHandler{}
	net := NewTCP()
	defer net.Close()
	ln, err := net.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()

	if _, err := net.Call(context.Background(), addr, &Request{Service: "s", Method: "m"}); err != nil {
		t.Fatal(err)
	}
	ln.Close()
	// Rebind the same address.
	ln2, err := net.Listen(addr, h)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer ln2.Close()

	// The cached client connection is dead; Call must transparently
	// reconnect.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := net.Call(ctx, addr, &Request{Service: "s", Method: "m"}); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
}

func TestTCPClosedNetworkRefusesCalls(t *testing.T) {
	net := NewTCP()
	net.Close()
	_, err := net.Call(context.Background(), "127.0.0.1:1", &Request{Service: "s", Method: "m"})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestHandlerFuncDropsEvents(t *testing.T) {
	called := false
	h := HandlerFunc(func(ctx context.Context, req *Request) *Response {
		called = true
		return &Response{ID: req.ID, OK: true}
	})
	h.HandleEvent(&Event{Name: "ignored"}) // must not panic
	resp := h.HandleRequest(context.Background(), &Request{ID: 9})
	if !called || !resp.OK {
		t.Fatal("HandlerFunc did not dispatch")
	}
}

func TestErrorResponse(t *testing.T) {
	req := &Request{ID: 7, Service: "cal", Method: "m"}
	resp := ErrorResponse(req, wire.CodeNoMethod, "no method %q", "m")
	if resp.ID != 7 || resp.OK || resp.Code != wire.CodeNoMethod {
		t.Fatalf("resp = %+v", resp)
	}
}

func BenchmarkTCPCall(b *testing.B) {
	h := &echoHandler{}
	net := NewTCP()
	ln, err := net.Listen("127.0.0.1:0", h)
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	defer net.Close()
	req := &Request{Service: "echo", Method: "ping", Args: wire.Args{"x": 1}}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Call(ctx, ln.Addr(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// metaHandler echoes the request metadata back as both the result and
// the response metadata, proving the envelope survives TCP framing.
type metaHandler struct{}

func (metaHandler) HandleRequest(ctx context.Context, req *Request) *Response {
	res, _ := wire.Marshal(req.FullMeta())
	return &Response{ID: req.ID, OK: true, Result: res, Meta: req.Meta.Clone()}
}

func (metaHandler) HandleEvent(ev *Event) {}

func TestTCPMetadataRoundTrip(t *testing.T) {
	net, addr := newTCPPair(t, metaHandler{})

	md := wire.Metadata{wire.MetaRequestID: "andy-9"}
	md.SetHops(2)
	md.SetDeadline(750 * time.Millisecond)
	resp, err := net.Call(context.Background(), addr, &Request{
		Service: "echo", Method: "meta", Caller: "andy", Meta: md,
	})
	if err != nil {
		t.Fatal(err)
	}
	var seen wire.Metadata
	if err := wire.Unmarshal(resp.Result, &seen); err != nil {
		t.Fatal(err)
	}
	if seen.Get(wire.MetaRequestID) != "andy-9" || seen.Hops() != 2 {
		t.Fatalf("server-side metadata = %v", seen)
	}
	if seen.Get(wire.MetaCaller) != "andy" {
		t.Fatalf("FullMeta lost the caller: %v", seen)
	}
	if seen.Deadline() != 750*time.Millisecond {
		t.Fatalf("deadline hint = %v", seen.Deadline())
	}
	if resp.Meta.Get(wire.MetaRequestID) != "andy-9" {
		t.Fatalf("response metadata = %v", resp.Meta)
	}
}
