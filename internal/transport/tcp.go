package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wire"
)

// DefaultPoolSize is the per-peer connection pool size when none is
// configured: min(4, GOMAXPROCS). A single multiplexed connection
// serializes every concurrent caller behind one write path and one
// in-order response stream; a small pool removes that head-of-line
// blocking without the per-call dial cost of connection-per-request.
func DefaultPoolSize() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// TCP is the real-socket Network implementation. Each (client,
// server-address) pair gets a small pool of TCP connections;
// concurrent Calls are multiplexed across them using wire request IDs
// with round-robin pick, and each connection coalesces the frames of
// concurrent writers into single socket writes (see coalescer).
//
// Use NewTCP; TCP is safe for concurrent use.
type TCP struct {
	poolSize int
	stats    *metrics.WireStats
	codec    wire.Codec

	mu     sync.Mutex
	pools  map[string]*connPool
	closed bool
}

// TCPOption configures a TCP network.
type TCPOption func(*TCP)

// WithPoolSize sets the number of pooled connections per peer address
// (n <= 0 keeps DefaultPoolSize).
func WithPoolSize(n int) TCPOption {
	return func(t *TCP) {
		if n > 0 {
			t.poolSize = n
		}
	}
}

// WithWireStats overrides the frame counter sink (tests; the default
// is the process-wide metrics.Wire()).
func WithWireStats(s *metrics.WireStats) TCPOption {
	return func(t *TCP) { t.stats = s }
}

// WithWireCodec selects the frame body encoding this network prefers
// to send (-wire-codec). The default is wire.CodecJSON. CodecV3 is
// negotiated per connection and never assumed: a client advertises v3
// support in request metadata, a v3-configured server answers such a
// client in v3, and each side switches its own sends to v3 only after
// it has received a v3 frame (or the advertisement) from the peer.
// Decoding always auto-detects per frame, so mixed-version fleets and
// JSON-only peers interoperate unchanged.
func WithWireCodec(c wire.Codec) TCPOption {
	return func(t *TCP) { t.codec = c }
}

// NewTCP returns a ready TCP network.
func NewTCP(opts ...TCPOption) *TCP {
	t := &TCP{
		poolSize: DefaultPoolSize(),
		stats:    metrics.Wire(),
		pools:    make(map[string]*connPool),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// --- server side ----------------------------------------------------------

type tcpListener struct {
	ln      net.Listener
	handler Handler
	stats   *metrics.WireStats
	codec   wire.Codec
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
}

// Listen implements Network.
func (t *TCP) Listen(addr string, h Handler) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	l := &tcpListener{ln: ln, handler: h, stats: t.stats, codec: t.codec, conns: make(map[net.Conn]struct{})}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

func (l *tcpListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	for c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

func (l *tcpListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = struct{}{}
		l.mu.Unlock()
		l.wg.Add(1)
		go l.serveConn(conn)
	}
}

func (l *tcpListener) serveConn(conn net.Conn) {
	defer l.wg.Done()
	defer func() {
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
		conn.Close()
	}()
	// One pooled-codec frame reader and one coalescing writer per
	// connection: responses from concurrent handler goroutines batch
	// into single socket writes.
	fr := wire.NewFrameReader(conn)
	cw := newCoalescer(conn, l.stats)
	// peerV3 records the codec handshake for this connection: it
	// latches once the client has proven it decodes v3 — either by
	// sending a v3 frame or by advertising MetaWireCodec — and a
	// v3-configured listener answers such a client in v3 from then
	// on. JSON-only clients never trip it and get JSON forever.
	var peerV3 atomic.Bool
	var readBytes int64
	for {
		env, err := fr.Read()
		if err != nil {
			return
		}
		l.stats.RecordRecv(1, int(fr.Bytes-readBytes))
		readBytes = fr.Bytes
		switch env.Kind {
		case wire.KindRequest:
			req := env.Request
			if req == nil {
				continue
			}
			if l.codec == wire.CodecV3 && !peerV3.Load() &&
				(fr.LastCodec == wire.CodecV3 || req.Meta.Get(wire.MetaWireCodec) == wire.WireCodecV3) {
				peerV3.Store(true)
			}
			// Each request gets its own goroutine so a slow
			// handler (e.g. a negotiation holding locks) cannot
			// stall unrelated traffic on the same connection.
			go func() {
				resp := l.handler.HandleRequest(context.Background(), req)
				if resp == nil {
					resp = ErrorResponse(req, wire.CodeInternal, "handler returned no response")
				}
				resp.ID = req.ID
				codec := wire.CodecJSON
				if peerV3.Load() {
					codec = wire.CodecV3
				}
				_, _ = writeEnvelope(cw, &wire.Envelope{Kind: wire.KindResponse, Response: resp}, codec)
			}()
		case wire.KindEvent:
			if env.Event != nil {
				ev := env.Event
				go l.handler.HandleEvent(ev)
			}
		}
	}
}

// writeEnvelope encodes env with the pooled codec and hands it to the
// connection's coalescing writer as one contiguous frame. flushed is
// the coalescer's leader batch size (see coalescer.write).
func writeEnvelope(cw *coalescer, env *wire.Envelope, codec wire.Codec) (flushed int, err error) {
	f, err := wire.EncodeFrameCodec(env, codec)
	if err != nil {
		return 0, err
	}
	flushed, err = cw.write(f.Bytes())
	f.Release()
	return flushed, err
}

// --- client side ----------------------------------------------------------

// connPool is the bounded set of multiplexed connections to one peer
// address. Slots dial lazily; pick is round-robin so one slow
// response stream (a long negotiation) cannot head-of-line-block
// unrelated calls on the other slots.
type connPool struct {
	next  atomic.Uint32
	mu    sync.Mutex
	slots []*tcpClientConn
}

type tcpClientConn struct {
	conn  net.Conn
	w     *coalescer
	stats *metrics.WireStats
	codec wire.Codec
	// peerV3 latches when the server sends this connection a v3
	// frame — proof it runs a v3-capable stack — after which a
	// v3-configured client encodes its own sends in v3. Until then
	// requests go out as JSON carrying the MetaWireCodec advert.
	peerV3 atomic.Bool

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *Response
	dead    bool
}

func (c *tcpClientConn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

func (t *TCP) pool(addr string) (*connPool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if t.pools == nil {
		t.pools = make(map[string]*connPool)
	}
	p, ok := t.pools[addr]
	if !ok {
		p = &connPool{slots: make([]*tcpClientConn, t.poolSize)}
		t.pools[addr] = p
	}
	return p, nil
}

// getConn returns a live pooled connection to addr, dialing the
// picked slot if it is empty or its connection has died.
func (t *TCP) getConn(addr string) (*tcpClientConn, error) {
	p, err := t.pool(addr)
	if err != nil {
		return nil, err
	}
	slot := int(p.next.Add(1)-1) % len(p.slots)

	p.mu.Lock()
	if c := p.slots[slot]; c != nil && !c.isDead() {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	c := &tcpClientConn{
		conn:    nc,
		w:       newCoalescer(nc, t.stats),
		stats:   t.stats,
		codec:   t.codec,
		pending: make(map[uint64]chan *Response),
	}

	p.mu.Lock()
	if existing := p.slots[slot]; existing != nil && !existing.isDead() {
		// Lost the dial race for this slot; use the winner.
		p.mu.Unlock()
		nc.Close()
		return existing, nil
	}
	p.slots[slot] = c
	p.mu.Unlock()

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.fail()
		return nil, ErrClosed
	}
	t.mu.Unlock()

	go func() {
		c.readLoop()
		t.dropConn(addr, c)
	}()
	return c, nil
}

// dropConn clears c from its pool slot (reconnect-on-next-use
// semantics, per pooled connection).
func (t *TCP) dropConn(addr string, c *tcpClientConn) {
	t.mu.Lock()
	p := t.pools[addr]
	t.mu.Unlock()
	if p == nil {
		return
	}
	p.mu.Lock()
	for i, s := range p.slots {
		if s == c {
			p.slots[i] = nil
		}
	}
	p.mu.Unlock()
}

func (c *tcpClientConn) readLoop() {
	fr := wire.NewFrameReader(c.conn)
	var readBytes int64
	for {
		env, err := fr.Read()
		if err != nil {
			c.fail()
			return
		}
		c.stats.RecordRecv(1, int(fr.Bytes-readBytes))
		readBytes = fr.Bytes
		if fr.LastCodec == wire.CodecV3 {
			c.peerV3.Store(true)
		}
		if env.Kind != wire.KindResponse || env.Response == nil {
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[env.Response.ID]
		if ok {
			delete(c.pending, env.Response.ID)
		}
		c.mu.Unlock()
		if ok {
			// The channel is buffered and ownership was transferred
			// under the lock (the entry is gone from pending), so this
			// send never blocks and never races a close.
			ch <- env.Response
		}
	}
}

func (c *tcpClientConn) fail() {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	pend := c.pending
	c.pending = make(map[uint64]chan *Response)
	c.mu.Unlock()
	c.conn.Close()
	c.w.fail(ErrUnreachable)
	for _, ch := range pend {
		close(ch)
	}
}

func (c *tcpClientConn) call(ctx context.Context, req *Request) (*Response, error) {
	ch := make(chan *Response, 1)
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return nil, ErrUnreachable
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	r := *req
	r.ID = id
	codec := wire.CodecJSON
	if c.codec == wire.CodecV3 {
		if c.peerV3.Load() {
			codec = wire.CodecV3
		} else {
			// Not yet negotiated: send JSON but advertise that we
			// decode v3. A v3-configured server answers in v3, which
			// flips peerV3 for the rest of this connection; a
			// JSON-only server ignores the key and nothing changes.
			r.Meta = r.Meta.Clone()
			r.Meta[wire.MetaWireCodec] = wire.WireCodecV3
		}
	}
	flushed, err := writeEnvelope(c.w, &wire.Envelope{Kind: wire.KindRequest, Request: &r}, codec)
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.fail()
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	if flushed > 1 {
		// This writer led a coalesced flush: its syscall carried
		// other requests' frames too.
		trace.EventCtx(ctx, "coalesce.flush", trace.Int("frames", flushed))
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, ErrUnreachable
		}
		return resp, nil
	case <-ctx.Done():
		// Cancel/deliver handoff: whoever removes the pending entry
		// under the lock owns the channel. If the entry is already
		// gone, readLoop (or fail) owns it and a send/close is
		// imminent — take that response rather than dropping an
		// answered call on the floor.
		c.mu.Lock()
		_, stillPending := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if !stillPending {
			if resp, ok := <-ch; ok {
				return resp, nil
			}
			return nil, ErrUnreachable
		}
		return nil, ctx.Err()
	}
}

// send delivers a one-way event frame on this connection.
func (c *tcpClientConn) send(ev *Event) error {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return ErrUnreachable
	}
	c.mu.Unlock()
	codec := wire.CodecJSON
	if c.codec == wire.CodecV3 && c.peerV3.Load() {
		codec = wire.CodecV3
	}
	_, err := writeEnvelope(c.w, &wire.Envelope{Kind: wire.KindEvent, Event: ev}, codec)
	if err != nil {
		c.fail()
		return fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	return nil
}

// Call implements Network.
func (t *TCP) Call(ctx context.Context, addr string, req *Request) (*Response, error) {
	ctx, span := trace.Start(ctx, "transport.send")
	if span == nil {
		return t.doCall(ctx, addr, req)
	}
	span.Annotate(trace.String("addr", addr))
	resp, err := t.doCall(ctx, addr, req)
	span.FinishErr(err)
	return resp, err
}

func (t *TCP) doCall(ctx context.Context, addr string, req *Request) (*Response, error) {
	c, err := t.getConn(addr)
	if err != nil {
		return nil, err
	}
	resp, err := c.call(ctx, req)
	if errors.Is(err, ErrUnreachable) {
		// One reconnect attempt: the pooled connection may have died
		// while idle (server restart, device reconnect).
		trace.EventCtx(ctx, "transport.reconnect", trace.String("addr", addr))
		t.dropConn(addr, c)
		c, err2 := t.getConn(addr)
		if err2 != nil {
			return nil, err2
		}
		return c.call(ctx, req)
	}
	return resp, err
}

// Send implements Network. Like Call it makes one reconnect attempt
// when the pooled connection has died idle, so events to a restarted
// peer are not silently lost.
func (t *TCP) Send(ctx context.Context, addr string, ev *Event) error {
	c, err := t.getConn(addr)
	if err != nil {
		return err
	}
	err = c.send(ev)
	if errors.Is(err, ErrUnreachable) {
		t.dropConn(addr, c)
		c, err2 := t.getConn(addr)
		if err2 != nil {
			return err2
		}
		return c.send(ev)
	}
	return err
}

// Close tears down all client connections. Listeners are closed
// individually by their owners.
func (t *TCP) Close() error {
	t.mu.Lock()
	t.closed = true
	pools := t.pools
	t.pools = map[string]*connPool{}
	t.mu.Unlock()
	for _, p := range pools {
		p.mu.Lock()
		slots := append([]*tcpClientConn(nil), p.slots...)
		p.mu.Unlock()
		for _, c := range slots {
			if c != nil {
				c.fail()
			}
		}
	}
	return nil
}
