package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/wire"
)

// TCP is the real-socket Network implementation. A single TCP
// connection per (client, server-address) pair is multiplexed across
// concurrent Calls using wire request IDs, mirroring the prototype's
// "small foot-print" socket layer.
//
// The zero value is ready to use. TCP is safe for concurrent use.
type TCP struct {
	mu     sync.Mutex
	conns  map[string]*tcpClientConn
	closed bool
}

// NewTCP returns a ready TCP network.
func NewTCP() *TCP {
	return &TCP{conns: make(map[string]*tcpClientConn)}
}

// --- server side ----------------------------------------------------------

type tcpListener struct {
	ln      net.Listener
	handler Handler
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
}

// Listen implements Network.
func (t *TCP) Listen(addr string, h Handler) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	l := &tcpListener{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

func (l *tcpListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	for c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

func (l *tcpListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = struct{}{}
		l.mu.Unlock()
		l.wg.Add(1)
		go l.serveConn(conn)
	}
}

func (l *tcpListener) serveConn(conn net.Conn) {
	defer l.wg.Done()
	defer func() {
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
		conn.Close()
	}()
	var writeMu sync.Mutex
	for {
		env, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		switch env.Kind {
		case wire.KindRequest:
			req := env.Request
			if req == nil {
				continue
			}
			// Each request gets its own goroutine so a slow
			// handler (e.g. a negotiation holding locks) cannot
			// stall unrelated traffic on the same connection.
			go func() {
				resp := l.handler.HandleRequest(context.Background(), req)
				if resp == nil {
					resp = ErrorResponse(req, wire.CodeInternal, "handler returned no response")
				}
				resp.ID = req.ID
				writeMu.Lock()
				defer writeMu.Unlock()
				_ = wire.WriteFrame(conn, &wire.Envelope{Kind: wire.KindResponse, Response: resp})
			}()
		case wire.KindEvent:
			if env.Event != nil {
				ev := env.Event
				go l.handler.HandleEvent(ev)
			}
		}
	}
}

// --- client side ----------------------------------------------------------

type tcpClientConn struct {
	conn    net.Conn
	writeMu sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *Response
	dead    bool
}

func (t *TCP) getConn(addr string) (*tcpClientConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if t.conns == nil {
		t.conns = make(map[string]*tcpClientConn)
	}
	if c, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	c := &tcpClientConn{conn: nc, pending: make(map[uint64]chan *Response)}

	t.mu.Lock()
	if existing, ok := t.conns[addr]; ok {
		// Lost the dial race; use the winner.
		t.mu.Unlock()
		nc.Close()
		return existing, nil
	}
	t.conns[addr] = c
	t.mu.Unlock()

	go func() {
		c.readLoop()
		t.dropConn(addr, c)
	}()
	return c, nil
}

func (t *TCP) dropConn(addr string, c *tcpClientConn) {
	t.mu.Lock()
	if t.conns[addr] == c {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
}

func (c *tcpClientConn) readLoop() {
	for {
		env, err := wire.ReadFrame(c.conn)
		if err != nil {
			c.fail()
			return
		}
		if env.Kind != wire.KindResponse || env.Response == nil {
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[env.Response.ID]
		if ok {
			delete(c.pending, env.Response.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- env.Response
		}
	}
}

func (c *tcpClientConn) fail() {
	c.mu.Lock()
	c.dead = true
	pend := c.pending
	c.pending = make(map[uint64]chan *Response)
	c.mu.Unlock()
	c.conn.Close()
	for _, ch := range pend {
		close(ch)
	}
}

func (c *tcpClientConn) call(ctx context.Context, req *Request) (*Response, error) {
	ch := make(chan *Response, 1)
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return nil, ErrUnreachable
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	r := *req
	r.ID = id
	c.writeMu.Lock()
	err := wire.WriteFrame(c.conn, &wire.Envelope{Kind: wire.KindRequest, Request: &r})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.fail()
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, ErrUnreachable
		}
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Call implements Network.
func (t *TCP) Call(ctx context.Context, addr string, req *Request) (*Response, error) {
	c, err := t.getConn(addr)
	if err != nil {
		return nil, err
	}
	resp, err := c.call(ctx, req)
	if errors.Is(err, ErrUnreachable) {
		// One reconnect attempt: the cached connection may have
		// died while idle (server restart, device reconnect).
		t.dropConn(addr, c)
		c, err2 := t.getConn(addr)
		if err2 != nil {
			return nil, err2
		}
		return c.call(ctx, req)
	}
	return resp, err
}

// Send implements Network.
func (t *TCP) Send(ctx context.Context, addr string, ev *Event) error {
	c, err := t.getConn(addr)
	if err != nil {
		return err
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return wire.WriteFrame(c.conn, &wire.Envelope{Kind: wire.KindEvent, Event: ev})
}

// Close tears down all client connections. Listeners are closed
// individually by their owners.
func (t *TCP) Close() error {
	t.mu.Lock()
	t.closed = true
	conns := t.conns
	t.conns = map[string]*tcpClientConn{}
	t.mu.Unlock()
	for _, c := range conns {
		c.fail()
	}
	return nil
}
