// Package transport defines the Network abstraction the SyD kernel
// rides on and provides the real TCP implementation.
//
// The paper's layering (Fig. 2) puts SyD above a "primitive
// distribution middleware" — their prototype used raw TCP sockets. We
// capture that layer as the Network interface so the identical kernel
// runs over real TCP (cmd/ binaries) and over the in-memory simulated
// network in internal/sim (tests, benchmarks, mobility experiments).
package transport

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/wire"
)

// Errors common to Network implementations.
var (
	ErrClosed      = errors.New("transport: closed")
	ErrUnreachable = errors.New("transport: address unreachable")
)

// Handler is the server-side dispatch surface. HandleRequest must be
// safe for concurrent calls; HandleEvent is one-way (no reply).
type Handler interface {
	HandleRequest(ctx context.Context, req *Request) *Response
	HandleEvent(ev *Event)
}

// Request, Response, and Event re-export the wire types so most
// packages only import transport.
type (
	// Request is an RPC request (see wire.Request).
	Request = wire.Request
	// Response is an RPC response (see wire.Response).
	Response = wire.Response
	// Event is a one-way notification (see wire.Event).
	Event = wire.Event
)

// Listener is a bound server endpoint.
type Listener interface {
	// Addr is the address peers dial to reach this listener.
	Addr() string
	// Close stops accepting and tears down live connections.
	Close() error
}

// Network is the primitive distribution middleware interface.
type Network interface {
	// Listen binds addr and serves inbound traffic through h.
	// For TCP an addr like "127.0.0.1:0" picks a free port; the
	// Listener reports the bound address.
	Listen(addr string, h Handler) (Listener, error)
	// Call performs a request/response exchange with addr.
	Call(ctx context.Context, addr string, req *Request) (*Response, error)
	// Send delivers a one-way event to addr (best effort).
	Send(ctx context.Context, addr string, ev *Event) error
}

// HandlerFunc adapts a request function into a Handler that drops
// events.
type HandlerFunc func(ctx context.Context, req *Request) *Response

// HandleRequest implements Handler.
func (f HandlerFunc) HandleRequest(ctx context.Context, req *Request) *Response {
	return f(ctx, req)
}

// HandleEvent implements Handler by ignoring the event.
func (HandlerFunc) HandleEvent(*Event) {}

// ErrorResponse builds a failed Response for req.
func ErrorResponse(req *Request, code wire.ErrCode, format string, args ...any) *Response {
	return &Response{ID: req.ID, OK: false, Code: code, Error: fmt.Sprintf(format, args...)}
}
