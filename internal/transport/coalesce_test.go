package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// blockingWriter simulates a socket whose syscalls take real time, so
// concurrent writers pile up behind the in-flight flush.
type blockingWriter struct {
	mu     sync.Mutex
	delay  time.Duration
	writes int
	bytes  int
	fail   error
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	time.Sleep(w.delay)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fail != nil {
		return 0, w.fail
	}
	w.writes++
	w.bytes += len(p)
	return len(p), nil
}

func TestCoalescerBatchesConcurrentWriters(t *testing.T) {
	stats := &metrics.WireStats{}
	w := &blockingWriter{delay: 2 * time.Millisecond}
	c := newCoalescer(w, stats)

	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.write([]byte("frame-payload")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	s := stats.Snapshot()
	if s.FramesSent != n {
		t.Fatalf("framesSent = %d, want %d", s.FramesSent, n)
	}
	if s.Flushes >= n {
		t.Fatalf("flushes = %d: every frame paid its own syscall", s.Flushes)
	}
	if s.BatchMax < 2 {
		t.Fatalf("batchMax = %d: writers never shared a flush", s.BatchMax)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.bytes != n*len("frame-payload") {
		t.Fatalf("wrote %d bytes, want %d", w.bytes, n*len("frame-payload"))
	}
	if int64(w.writes) != s.Flushes {
		t.Fatalf("writer saw %d writes, stats counted %d flushes", w.writes, s.Flushes)
	}
}

func TestCoalescerSequentialWritesOneSyscallEach(t *testing.T) {
	stats := &metrics.WireStats{}
	w := &blockingWriter{}
	c := newCoalescer(w, stats)
	for i := 0; i < 5; i++ {
		if _, err := c.write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if s := stats.Snapshot(); s.Flushes != 5 || s.FramesSent != 5 {
		t.Fatalf("sequential path: %+v", s)
	}
}

func TestCoalescerWriteErrorIsTerminal(t *testing.T) {
	boom := errors.New("boom")
	w := &blockingWriter{fail: boom}
	c := newCoalescer(w, &metrics.WireStats{})
	if _, err := c.write([]byte("a")); !errors.Is(err, boom) {
		t.Fatalf("first write err = %v, want boom", err)
	}
	// Later writers fail fast without touching the writer.
	if _, err := c.write([]byte("b")); !errors.Is(err, boom) {
		t.Fatalf("second write err = %v, want boom", err)
	}
}

func TestCoalescerFailWakesWaiters(t *testing.T) {
	w := &blockingWriter{delay: 50 * time.Millisecond}
	c := newCoalescer(w, &metrics.WireStats{})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.write([]byte("frame"))
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let the leader enter its flush
	c.fail(ErrUnreachable)
	wg.Wait()
	failed := 0
	for _, err := range errs {
		if errors.Is(err, ErrUnreachable) {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("fail() never surfaced to any waiter")
	}
}
