package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/auth"
	"repro/internal/calendar"
	"repro/internal/engine"
	"repro/internal/links"
	"repro/internal/listener"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

// RunF1 reproduces Figure 1 (the three-tier SyD architecture) as an
// executable trace: the same application call crosses SyDApp →
// groupware (directory + engine) → deviceware (listener + store), and
// the identical application code runs unchanged on two different
// simulated networks (device/network independence).
func RunF1() (*Result, error) {
	res := &Result{
		ID:     "F1",
		Title:  "Fig.1 three-tier architecture: layered call trace + network independence",
		Header: []string{"network", "layer", "operation", "messages"},
	}
	ctx := context.Background()
	for _, variant := range []struct {
		name string
		cfg  sim.Config
	}{
		{"ideal", sim.Config{}},
		{"lossy-lan", sim.Config{BaseLatency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond, Seed: 1}},
	} {
		w, err := NewWorld(workload.Users(3), variant.cfg)
		if err != nil {
			return nil, err
		}
		users := workload.Users(3)
		a := w.Cals[users[0]]

		before := w.Net.Stats().Requests
		slots, err := a.FindCommonSlots(ctx, calendar.Request{
			FromDay: "2003-04-21", ToDay: "2003-04-21",
			Must: users[1:],
		})
		if err != nil {
			return nil, err
		}
		afterLookup := w.Net.Stats().Requests
		res.AddRow(variant.name, "SyDApp", fmt.Sprintf("FindCommonSlots -> %d slots", len(slots)), "")
		res.AddRow(variant.name, "groupware", "directory lookups + group GetFreeSlots", fmt.Sprintf("%d", afterLookup-before))

		m, err := a.SetupMeeting(ctx, calendar.Request{
			Title: "f1", Day: slots[0].Day, Hour: slots[0].Hour, PinSlot: true, Must: users[1:],
		})
		if err != nil {
			return nil, err
		}
		afterSetup := w.Net.Stats().Requests
		res.AddRow(variant.name, "deviceware", fmt.Sprintf("negotiated reserve on %d devices (%s)", len(m.Reserved), m.Status), fmt.Sprintf("%d", afterSetup-afterLookup))
	}
	res.AddNote("identical application code and outcomes on both network variants — the layering of Fig.1")
	return res, nil
}

// RunF2 reproduces Figure 2 (the SyD runtime environment) by measuring
// the cost each layer adds on the way down the stack: raw transport
// call, listener dispatch, engine (directory-resolved) invocation,
// authenticated invocation, and a full coordination-link negotiation.
func RunF2() (*Result, error) {
	res := &Result{
		ID:     "F2",
		Title:  "Fig.2 runtime layers: per-layer invocation cost (ideal network)",
		Header: []string{"layer", "operation", "ns/op"},
	}
	ctx := context.Background()
	const iters = 2000

	w, err := NewWorld(workload.Users(2), sim.Config{})
	if err != nil {
		return nil, err
	}
	users := workload.Users(2)
	target := w.Nodes[users[1]]

	// Raw transport (primitive distribution middleware).
	rawLis, err := w.Net.Listen("raw-endpoint", transport.HandlerFunc(
		func(ctx context.Context, req *transport.Request) *transport.Response {
			return &transport.Response{ID: req.ID, OK: true}
		}))
	if err != nil {
		return nil, err
	}
	timeIt := func(name, op string, f func() error) error {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := f(); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		res.AddRow(name, op, fmt.Sprintf("%d", time.Since(start).Nanoseconds()/iters))
		return nil
	}

	req := &transport.Request{Service: "x", Method: "y"}
	if err := timeIt("transport", "raw socket round trip", func() error {
		_, err := w.Net.Call(ctx, rawLis.Addr(), req)
		return err
	}); err != nil {
		return nil, err
	}

	// Listener dispatch (deviceware).
	obj := listener.NewObject().Handle("Ping", func(ctx context.Context, call *listener.Call) (any, error) {
		return "pong", nil
	})
	if err := target.RegisterService(ctx, "bench.svc", obj); err != nil {
		return nil, err
	}
	eng := w.Nodes[users[0]].Engine
	if err := timeIt("deviceware", "listener dispatch via engine (uncached lookup)", func() error {
		return eng.Invoke(ctx, "bench.svc", "Ping", nil, nil)
	}); err != nil {
		return nil, err
	}

	// Authenticated invocation (§5.4).
	an := auth.NewAuthenticator("f2-key")
	an.Table.Add(users[0], "pw")
	authObj := listener.NewObject()
	authObj.RequireAuth = true
	authObj.Handle("Ping", func(ctx context.Context, call *listener.Call) (any, error) { return "pong", nil })
	authLis := listener.New(users[1]+"-auth", an)
	authLis.Register("bench.auth", authObj)
	authLn, err := w.Net.Listen("auth-endpoint", authLis)
	if err != nil {
		return nil, err
	}
	if err := w.Dir.RegisterService(ctx, "bench.auth", "", authLn.Addr(), nil); err != nil {
		return nil, err
	}
	authEng := engine.New(w.Net, w.Dir, users[0])
	if err := authEng.SetCredential(an.Sealer, users[0], "pw"); err != nil {
		return nil, err
	}
	if err := timeIt("groupware", "authenticated invocation (TEA credential)", func() error {
		return authEng.Invoke(ctx, "bench.auth", "Ping", nil, nil)
	}); err != nil {
		return nil, err
	}

	// Full negotiation (SyDLinks).
	i := 0
	if err := timeIt("SyDLinks", "negotiation-and over 1 remote entity", func() error {
		i++
		_, err := w.Cals[users[0]].Links().Negotiate(ctx, links.Spec{
			Action: calendar.ActionReserve,
			Args: wire.Args{
				"meeting": fmt.Sprintf("F2-%d", i), "priority": 0,
				"day": "2003-04-21", "hour": 9,
			},
			Targets: []links.EntityRef{{
				User: users[1], Entity: calendar.Slot{Day: "2003-04-21", Hour: 9}.Entity(),
			}},
			Constraint: links.And,
		})
		if err != nil {
			return err
		}
		// Release for the next round.
		return eng.Invoke(ctx, links.ServiceFor(users[1]), "Apply", wire.Args{
			"entity": calendar.Slot{Day: "2003-04-21", Hour: 9}.Entity(),
			"action": calendar.ActionRelease,
			"args":   map[string]any{"meeting": ""},
		}, nil)
	}); err != nil {
		return nil, err
	}

	res.AddNote("three sample SyDApps share this kernel: examples/meeting, examples/fleet, examples/priceisright (Fig.2's app list)")
	return res, nil
}

// RunF3 reproduces Figure 3 (kernel module interactions): the
// publish → lookup → single invoke → group invoke conversation between
// SyDDirectory, SyDListener, and SyDEngine, with message counts per
// step, plus raw directory throughput.
func RunF3() (*Result, error) {
	w, err := NewWorld(nil, sim.Config{})
	if err != nil {
		return nil, err
	}
	return runF3Body("F3",
		"Fig.3 kernel interactions: publish/lookup/invoke trace + directory throughput", w)
}

// RunF3Sharded is RunF3 against a 4-shard directory behind the
// control plane: the same kernel-interaction trace and lookup
// throughput, with every directory op routed by the shard map.
func RunF3Sharded() (*Result, error) {
	w, err := NewShardedWorld(nil, sim.Config{}, 4)
	if err != nil {
		return nil, err
	}
	return runF3Body("F3s",
		"Fig.3 kernel interactions over a 4-shard directory (epoch-routed)", w)
}

func runF3Body(id, title string, w *World) (*Result, error) {
	res := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"step", "modules", "messages"},
	}
	ctx := context.Background()
	users := workload.Users(4)

	count := func() int64 { return w.Net.Stats().Requests }
	before := count()
	for _, u := range users {
		if err := w.AddUser(u, 0); err != nil {
			return nil, err
		}
	}
	res.AddRow("publish (4 nodes x user+links+events+cal)", "SyDListener -> SyDDirectory", fmt.Sprintf("%d", count()-before))

	before = count()
	if _, err := w.Dir.LookupService(ctx, calendar.ServiceFor(users[1])); err != nil {
		return nil, err
	}
	res.AddRow("lookup cal."+users[1], "SyDEngine -> SyDDirectory", fmt.Sprintf("%d", count()-before))

	before = count()
	var info calendar.SlotInfo
	err := w.Nodes[users[0]].Engine.Invoke(ctx, calendar.ServiceFor(users[1]), "SlotInfo",
		wire.Args{"day": "2003-04-21", "hour": 9}, &info)
	if err != nil {
		return nil, err
	}
	res.AddRow("single invoke SlotInfo", "SyDEngine -> SyDListener", fmt.Sprintf("%d", count()-before))

	before = count()
	if err := w.Dir.CreateGroup(ctx, "team", users[1:]); err != nil {
		return nil, err
	}
	results, err := w.Nodes[users[0]].Engine.InvokeGroupName(ctx, "team", calendar.ServicePrefix+"%s", "ListMeetings", nil)
	if err != nil {
		return nil, err
	}
	res.AddRow(fmt.Sprintf("group invoke over %d members", len(results)),
		"SyDEngine (fan-out + aggregation)", fmt.Sprintf("%d", count()-before))

	// Directory op throughput.
	const ops = 5000
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := w.Dir.LookupService(ctx, calendar.ServiceFor(users[1])); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	res.AddRow("directory lookup throughput", "SyDDirectory",
		fmt.Sprintf("%.0f ops/sec", float64(ops)/elapsed.Seconds()))
	if w.Controller != nil {
		res.AddNote("sharded: %d shards, epoch %d", len(w.Controller.Current().Shards), w.Dir.Epoch())
	}
	return res, nil
}

// RunF4 reproduces Figure 4 (the UML activity diagram of a
// negotiation-or across objects A, B, C): it prints the step-accurate
// protocol trace and then checks the §4.3 semantics table for every
// constraint against every availability pattern of B and C.
func RunF4() (*Result, error) {
	res := &Result{
		ID:     "F4",
		Title:  "Fig.4 negotiation-or activity diagram: protocol trace + §4.3 semantics",
		Header: []string{"phase", "entity", "ok", "detail"},
	}
	ctx := context.Background()
	users := []string{"A", "B", "C"}
	w, err := NewWorld(users, sim.Config{})
	if err != nil {
		return nil, err
	}
	slot := calendar.Slot{Day: "2003-04-21", Hour: 14}
	// B is busy so the or-negotiation exercises both branches of the
	// diagram (one lock obtained, one refused).
	if err := w.Cals["B"].MarkBusy(slot, "class", 0); err != nil {
		return nil, err
	}
	spec := links.Spec{
		Action:     calendar.ActionReserve,
		Args:       wire.Args{"meeting": "F4-M", "priority": 0, "day": slot.Day, "hour": slot.Hour},
		Targets:    []links.EntityRef{{User: "B", Entity: slot.Entity()}, {User: "C", Entity: slot.Entity()}},
		Constraint: links.Or,
		Local:      &links.LocalChange{Entity: slot.Entity(), Action: calendar.ActionReserve, Args: wire.Args{"meeting": "F4-M", "priority": 0}},
	}
	outcome, err := w.Cals["A"].Links().Negotiate(ctx, spec)
	if err != nil {
		return nil, err
	}
	for _, s := range outcome.Trace {
		res.AddRow(s.Phase, s.Entity, fmt.Sprintf("%v", s.OK), s.Detail)
	}
	res.AddNote("accepted=%v rejected=%v — matches Fig.4: A locks itself, marks B and C, B refuses, constraint or(k=1) holds, A and C change", outcome.Accepted, outcome.Rejected)

	// §4.3 semantics sweep: constraint x availability pattern.
	type pattern struct {
		name       string
		bBusy      bool
		cBusy      bool
		constraint links.Constraint
		k          int
		wantOK     bool
	}
	patterns := []pattern{
		{"and both free", false, false, links.And, 0, true},
		{"and one busy", true, false, links.And, 0, false},
		{"or both busy", true, true, links.Or, 0, false},
		{"or one busy", true, false, links.Or, 0, true},
		{"xor both free", false, false, links.Xor, 0, false},
		{"xor one busy", true, false, links.Xor, 0, true},
		{"xor both busy", true, true, links.Xor, 0, false},
		{"2-of-2 free", false, false, links.Or, 2, true},
		{"2-of-2 one busy", true, false, links.Or, 2, false},
	}
	for _, p := range patterns {
		w2, err := NewWorld(users, sim.Config{})
		if err != nil {
			return nil, err
		}
		if p.bBusy {
			if err := w2.Cals["B"].MarkBusy(slot, "x", 0); err != nil {
				return nil, err
			}
		}
		if p.cBusy {
			if err := w2.Cals["C"].MarkBusy(slot, "x", 0); err != nil {
				return nil, err
			}
		}
		sp := spec
		sp.Constraint = p.constraint
		sp.K = p.k
		got, _ := w2.Cals["A"].Links().Negotiate(ctx, sp)
		okStr := fmt.Sprintf("%v", got.OK)
		verdict := "PASS"
		if got.OK != p.wantOK {
			verdict = "FAIL"
		}
		res.AddRow("semantics:"+p.name, string(p.constraint), okStr, verdict)
		if got.OK != p.wantOK {
			return res, fmt.Errorf("semantics %s: got %v want %v", p.name, got.OK, p.wantOK)
		}
	}
	return res, nil
}
