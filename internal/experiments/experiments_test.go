package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func simConfigZero() sim.Config      { return sim.Config{} }
func ctxBackground() context.Context { return context.Background() }

// TestAllExperimentsRun executes every registered experiment and
// checks its internal shape assertions hold (each Run* returns an
// error when a paper-shape expectation is violated).
func TestAllExperimentsRun(t *testing.T) {
	reg, ids := All()
	if len(ids) != 15 {
		t.Fatalf("registered %d experiments: %v", len(ids), ids)
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res, err := reg[id]()
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if res == nil || res.ID != id {
				t.Fatalf("%s returned %+v", id, res)
			}
			if len(res.Rows) == 0 {
				t.Fatalf("%s produced no rows", id)
			}
			out := res.Render()
			if !strings.Contains(out, res.Title) {
				t.Fatalf("render missing title:\n%s", out)
			}
		})
	}
}

func TestResultRender(t *testing.T) {
	r := &Result{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddRow("longer", "x")
	r.AddNote("a note with %d", 42)
	out := r.Render()
	for _, want := range []string{"== X — demo ==", "longer", "note: a note with 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestWorldAddUser(t *testing.T) {
	w, err := NewWorld(nil, simConfigZero())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddUser("solo", 3); err != nil {
		t.Fatal(err)
	}
	if w.Cals["solo"] == nil || w.Nodes["solo"] == nil {
		t.Fatal("user not registered in world maps")
	}
	info, err := w.Dir.LookupUser(ctxBackground(), "solo")
	if err != nil {
		t.Fatal(err)
	}
	if info.Priority != 3 {
		t.Fatalf("priority = %d", info.Priority)
	}
}

func TestScenarioRunFeedsMetrics(t *testing.T) {
	// Acceptance: one E-scenario run leaves per-method counts and
	// latency in the process-wide registry (experiment worlds wire
	// their nodes to metrics.Default()).
	metrics.Default().Reset()
	if _, err := RunE1(); err != nil {
		t.Fatal(err)
	}
	snap := metrics.Default().Snapshot()
	if snap.TotalCount() == 0 {
		t.Fatal("E1 recorded no metrics")
	}
	var clientSeries, serverSeries int
	for _, e := range snap.Entries {
		if e.Count <= 0 || e.Service == "" || e.Method == "" {
			t.Fatalf("malformed entry: %+v", e)
		}
		if e.MaxMs < 0 || e.AvgMs < 0 {
			t.Fatalf("negative latency: %+v", e)
		}
		switch e.Layer {
		case metrics.LayerClient:
			clientSeries++
		case metrics.LayerServer:
			serverSeries++
		}
	}
	if clientSeries == 0 || serverSeries == 0 {
		t.Fatalf("layers missing: %d client / %d server series", clientSeries, serverSeries)
	}
	metrics.Default().Reset() // leave no residue for other tests
}
