package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/calendar"
	"repro/internal/links"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/internal/workload"
)

// entrySize is the per-slot storage estimate used on both sides of T1.
const entrySize = 64

// RunT1 regenerates the §6 comparison as a measured table: the same
// seeded workload (busy calendars + meeting requests + cancellations)
// runs through the SyD calendar and through the baseline
// replicated-folder / manual-accept model, and we compare per-user
// storage, messages, and human interventions.
func RunT1() (*Result, error) {
	res := &Result{
		ID:     "T1",
		Title:  "§6 comparison: SyD calendar vs existing-application model",
		Header: []string{"metric", "SyD", "baseline", "expected shape"},
	}
	ctx := context.Background()
	const (
		nUsers    = 8
		nMeetings = 10
		fanout    = 3
		density   = 0.25
		seed      = 2003
	)
	users := workload.Users(nUsers)
	win := workload.DefaultWindow()
	plan := workload.MakeBusyPlan(users, win, density, seed)
	meetings := workload.MakeMeetingPlans(users, nMeetings, fanout, seed)

	// --- SyD side -----------------------------------------------------------
	w, err := NewWorld(users, sim.Config{CountBytes: true, Seed: seed})
	if err != nil {
		return nil, err
	}
	for _, u := range users {
		if err := plan.ApplyToCalendar(u, w.Cals[u]); err != nil {
			return nil, err
		}
	}
	w.Net.ResetStats()
	sydInterventions := 0
	var sydMeetings []*calendar.Meeting
	for _, mp := range meetings {
		m, err := w.Cals[mp.Initiator].SetupMeeting(ctx, calendar.Request{
			Title: "t1", FromDay: win.FromDay(), ToDay: win.ToDay(),
			Must: mp.Participants, Priority: mp.Priority,
		})
		if err != nil {
			continue // window exhausted for this combination
		}
		sydInterventions++ // the initiator's single scheduling click
		sydMeetings = append(sydMeetings, m)
	}
	sydSchedStats := w.Net.Stats()
	scheduled := len(sydMeetings)

	// Cancel half the meetings; SyD repairs (promotions/releases) are
	// automatic, each cancel costs one click.
	w.Net.ResetStats()
	cancelled := 0
	for i, m := range sydMeetings {
		if i%2 == 0 {
			if err := w.Cals[m.Initiator].CancelMeeting(ctx, m.ID); err == nil {
				sydInterventions++
				cancelled++
			}
		}
	}
	sydCancelStats := w.Net.Stats()

	// SyD per-user storage: own slot rows only.
	sydStorage := 0
	for _, u := range users {
		sydStorage += w.Cals[u].SlotCount() * entrySize
	}
	sydStoragePerUser := sydStorage / nUsers

	// --- baseline side --------------------------------------------------------
	bl := baseline.New(users, false)
	plan.ApplyToBaseline(bl)
	blStorageSeeded := bl.TotalStorageBytes(entrySize) / nUsers
	bl.ResetStats()
	var blMeetings []*baseline.Meeting
	blScheduled := 0
	for _, mp := range meetings {
		m, _ := bl.ScheduleMeeting(mp.Initiator, mp.Participants, win.BaselineSlots())
		if m != nil {
			blScheduled++
			blMeetings = append(blMeetings, m)
		}
	}
	blSchedStats := bl.Stats()

	bl.ResetStats()
	blCancelled := 0
	for i, m := range blMeetings {
		if i%2 == 0 && bl.CancelMeeting(m.ID) {
			blCancelled++
			// §6: no automatic rescheduling — a dependent meeting
			// must be rescheduled manually from scratch. Model one
			// dependent meeting per cancellation.
			bl.ScheduleMeeting(m.Initiator, m.Participants[1:], win.BaselineSlots())
		}
	}
	blCancelStats := bl.Stats()

	// --- rows -----------------------------------------------------------------
	perMeeting := func(v int64, n int) string {
		if n == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.1f", float64(v)/float64(n))
	}
	res.AddRow("meetings scheduled",
		fmt.Sprintf("%d/%d", scheduled, nMeetings),
		fmt.Sprintf("%d/%d", blScheduled, nMeetings), "comparable")
	res.AddRow("storage bytes/user",
		fmt.Sprintf("%d", sydStoragePerUser),
		fmt.Sprintf("%d", blStorageSeeded),
		"SyD ~ own calendar; baseline ~ N x calendars")
	res.AddRow("messages/scheduled meeting",
		perMeeting(sydSchedStats.Requests+sydSchedStats.Events, scheduled),
		perMeeting(int64(blSchedStats.Messages), blScheduled),
		"SyD machine-to-machine; baseline includes human e-mail")
	res.AddRow("human interventions/meeting",
		fmt.Sprintf("%.1f", 1.0),
		perMeeting(int64(blSchedStats.Interventions), blScheduled),
		"SyD: 1 click; baseline: 1 + N accepts (+retries)")
	res.AddRow("interventions per cancel+repair",
		fmt.Sprintf("%.1f", 1.0),
		perMeeting(int64(blCancelStats.Interventions), blCancelled),
		"SyD auto-promotes; baseline full manual redo")
	res.AddRow("messages per cancel+repair",
		perMeeting(sydCancelStats.Requests+sydCancelStats.Events, cancelled),
		perMeeting(int64(blCancelStats.Messages), blCancelled), "")
	// Stale-replica variant: with replication lag the baseline's
	// initiators schedule against outdated folders, producing declines
	// and manual retries — SyD queries live calendars and never sees
	// stale data (§6: "can perform real time updates").
	blLag := baseline.New(users, true)
	plan.ApplyToBaseline(blLag)
	blLag.ResetStats()
	lagScheduled, lagRetries := 0, 0
	for _, mp := range meetings {
		m, rounds := blLag.ScheduleMeeting(mp.Initiator, mp.Participants, win.BaselineSlots())
		if m != nil {
			lagScheduled++
			lagRetries += rounds - 1
		}
	}
	res.AddRow("decline/retry rounds (stale replicas)",
		"0 (live queries)",
		fmt.Sprintf("%d over %d meetings", lagRetries, lagScheduled),
		"baseline replicas go stale; SyD cannot")
	res.AddRow("priority/bumping", "yes (measured in E3)", "no (§6)", "feature")
	res.AddRow("authentication", "TEA-sealed credentials (§5.4)", "none (§6)", "feature")
	res.AddRow("real-time updates", "trigger-driven", "manual accept", "feature")

	if sydStoragePerUser >= blStorageSeeded {
		return res, fmt.Errorf("storage shape violated: SyD %d >= baseline %d", sydStoragePerUser, blStorageSeeded)
	}
	if float64(blSchedStats.Interventions)/float64(blScheduled) <= 1.0 {
		return res, fmt.Errorf("intervention shape violated")
	}
	return res, nil
}

// RunT2 runs the performance sweeps implied by §5.1 ("all changes
// happen in real time") and §7 (low bandwidth, weak connectivity):
// group-invocation latency vs group size, link-op throughput,
// negotiation under contention, proxy failover, and expiry-sweep
// scale.
func RunT2() (*Result, error) {
	res := &Result{
		ID:     "T2",
		Title:  "performance sweeps: group size, link throughput, contention, failover",
		Header: []string{"sweep", "parameter", "value"},
	}
	ctx := context.Background()

	// T2a: group invocation latency vs group size (200µs one-way).
	for _, size := range []int{2, 4, 8, 16} {
		users := workload.Users(size + 1)
		w, err := NewWorld(users, sim.Config{BaseLatency: 200 * time.Microsecond, Seed: 7})
		if err != nil {
			return nil, err
		}
		services := make([]string, size)
		for i, u := range users[1:] {
			services[i] = calendar.ServiceFor(u)
		}
		eng := w.Nodes[users[0]].Engine
		// Warm the directory cache effects out of the measurement.
		eng.GroupInvoke(ctx, services, "ListMeetings", nil)
		const rounds = 10
		start := time.Now()
		for i := 0; i < rounds; i++ {
			results := eng.GroupInvoke(ctx, services, "ListMeetings", nil)
			for _, r := range results {
				if r.Err != nil {
					return nil, r.Err
				}
			}
		}
		avg := time.Since(start) / rounds
		res.AddRow("T2a group invoke latency", fmt.Sprintf("group=%d", size), avg.Round(10*time.Microsecond).String())
	}
	res.AddNote("T2a: concurrent fan-out keeps latency ~flat in group size (bounded by slowest member), message count linear")

	// T2b: link database op throughput (local).
	{
		w, err := NewWorld(workload.Users(2), sim.Config{})
		if err != nil {
			return nil, err
		}
		lm := w.Cals["u00"].Links()
		const ops = 5000
		start := time.Now()
		for i := 0; i < ops; i++ {
			l := &links.Link{
				ID: fmt.Sprintf("T2b-%d", i), Type: links.Subscription, Subtype: links.Permanent,
				Owner:   links.EntityRef{User: "u00", Entity: "slot:2003-04-21:9"},
				Targets: []links.EntityRef{{User: "u01", Entity: "slot:2003-04-21:9"}},
			}
			if err := lm.AddLink(l); err != nil {
				return nil, err
			}
		}
		addRate := float64(ops) / time.Since(start).Seconds()
		start = time.Now()
		for i := 0; i < ops; i++ {
			if _, err := lm.DeleteLinkLocal(ctx, fmt.Sprintf("T2b-%d", i)); err != nil {
				return nil, err
			}
		}
		delRate := float64(ops) / time.Since(start).Seconds()
		res.AddRow("T2b link ops", "AddLink", fmt.Sprintf("%.0f ops/sec", addRate))
		res.AddRow("T2b link ops", "DeleteLinkLocal", fmt.Sprintf("%.0f ops/sec", delRate))
	}

	// T2c: negotiation success under slot contention — k initiators
	// race negotiation-and for the same two target slots.
	for _, racers := range []int{2, 4, 8} {
		users := append(workload.Users(racers), "tx", "ty")
		w, err := NewWorld(users, sim.Config{})
		if err != nil {
			return nil, err
		}
		slot := calendar.Slot{Day: "2003-04-21", Hour: 10}
		var wg sync.WaitGroup
		wins := make([]bool, racers)
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, err := w.Cals[workload.Users(racers)[i]].Links().Negotiate(ctx, links.Spec{
					Action: calendar.ActionReserve,
					Args:   wire.Args{"meeting": fmt.Sprintf("race-%d", i), "priority": 0},
					Targets: []links.EntityRef{
						{User: "tx", Entity: slot.Entity()},
						{User: "ty", Entity: slot.Entity()},
					},
					Constraint: links.And,
				})
				wins[i] = err == nil
			}(i)
		}
		wg.Wait()
		winners := 0
		for _, okv := range wins {
			if okv {
				winners++
			}
		}
		consistent := w.Cals["tx"].Slot(slot).Meeting == w.Cals["ty"].Slot(slot).Meeting
		res.AddRow("T2c contention", fmt.Sprintf("racers=%d", racers),
			fmt.Sprintf("winners=%d consistent=%v", winners, consistent))
		if winners != 1 || !consistent {
			return res, fmt.Errorf("contention broke atomicity: winners=%d consistent=%v", winners, consistent)
		}
	}
	res.AddNote("T2c: exactly one racer wins and both targets agree — deadlock-free ordered try-locks")

	// T2d: proxy failover — latency of a call served by the device vs
	// by the proxy after a disconnect.
	{
		w, err := NewWorld([]string{"caller"}, sim.Config{BaseLatency: 200 * time.Microsecond, Seed: 3})
		if err != nil {
			return nil, err
		}
		if err := startCalendarProxy(w, "p1"); err != nil {
			return nil, err
		}
		if err := w.AddUser("mobile", 0); err != nil {
			return nil, err
		}
		eng := w.Nodes["caller"].Engine
		probe := func() (time.Duration, error) {
			start := time.Now()
			err := eng.Invoke(ctx, calendar.ServiceFor("mobile"), "ListMeetings", nil, nil)
			return time.Since(start), err
		}
		direct, err := probe()
		if err != nil {
			return nil, err
		}
		if err := w.Cals["mobile"].GoOffline(ctx, w.Net, w.Nodes["mobile"].Dir); err != nil {
			return nil, err
		}
		w.Net.SetDown(w.Nodes["mobile"].Addr(), true)
		w.Nodes["caller"].Dir.Invalidate(calendar.ServiceFor("mobile"))
		proxied, err := probe()
		if err != nil {
			return nil, err
		}
		res.AddRow("T2d failover", "direct call", direct.Round(10*time.Microsecond).String())
		res.AddRow("T2d failover", "proxied call (device down)", proxied.Round(10*time.Microsecond).String())
	}

	// T2e: expiry sweep at scale.
	{
		w, err := NewWorld(workload.Users(1), sim.Config{})
		if err != nil {
			return nil, err
		}
		lm := w.Cals["u00"].Links()
		const n = 2000
		for i := 0; i < n; i++ {
			l := &links.Link{
				ID: fmt.Sprintf("T2e-%d", i), Type: links.Subscription, Subtype: links.Permanent,
				Owner:   links.EntityRef{User: "u00", Entity: fmt.Sprintf("slot:2003-04-21:%d", i%24)},
				Expires: w.Clk.Now().Add(time.Duration(i%2+1) * time.Hour),
			}
			if err := lm.AddLink(l); err != nil {
				return nil, err
			}
		}
		w.Clk.Advance(90 * time.Minute) // expire half
		start := time.Now()
		expired := lm.ExpireSweep(ctx, w.Clk.Now())
		res.AddRow("T2e expiry sweep", fmt.Sprintf("%d links, %d expired", n, len(expired)),
			time.Since(start).Round(100*time.Microsecond).String())
		if len(expired) != n/2 {
			return res, fmt.Errorf("expired %d, want %d", len(expired), n/2)
		}
	}
	return res, nil
}
