// Package experiments regenerates every figure- and table-equivalent
// of the paper's evaluation (see DESIGN.md §4 for the index):
//
//	F1-F4  executable reproductions of the paper's four figures
//	E1-E5  the §4.4/§5 calendar scenarios
//	T1     the §6 comparison against "existing calendar applications"
//	T2     performance sweeps implied by §5.1/§7
//	A1-A2  ablations of design decisions (DESIGN.md §5)
//
// Each experiment builds a fresh simulated deployment, runs the
// workload, and returns a Result whose rows cmd/sydbench prints. The
// same functions back the testing.B benchmarks in bench_test.go.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/calendar"
	"repro/internal/clock"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/metrics"
	"repro/internal/notify"
	"repro/internal/sim"
)

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends a free-form note line.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render formats the result as an aligned text table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteString("\n")
	}
	if len(r.Header) > 0 {
		line(r.Header)
		var dashes []string
		for _, w := range widths {
			dashes = append(dashes, strings.Repeat("-", w))
		}
		line(dashes)
	}
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// World is a simulated SyD deployment shared by the experiments.
type World struct {
	Net   *sim.Net
	Clk   *clock.Fake
	Dir   *directory.Client
	Mail  *notify.Mailbox
	Cals  map[string]*calendar.Calendar
	Nodes map[string]*core.Node

	// Controller and CPAddr are set on sharded worlds
	// (NewShardedWorld): the control plane publishing the shard map,
	// and its simulated address.
	Controller *controlplane.Controller
	CPAddr     string
}

// NewWorld boots a directory plus one calendar node per user on a
// fresh simulated network.
func NewWorld(users []string, cfg sim.Config) (*World, error) {
	net := sim.New(cfg)
	clk := clock.NewFake(time.Date(2003, 4, 21, 8, 0, 0, 0, time.UTC))
	srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(time.Hour))
	if _, err := net.Listen("dir", srv.Handler()); err != nil {
		return nil, err
	}
	w := &World{
		Net:   net,
		Clk:   clk,
		Dir:   directory.NewClient(net, "dir"),
		Mail:  notify.NewMailbox(),
		Cals:  map[string]*calendar.Calendar{},
		Nodes: map[string]*core.Node{},
	}
	for _, u := range users {
		if err := w.AddUser(u, 0); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// NewShardedWorld is NewWorld against a sharded directory: shards
// shard servers at "dir0".."dirN-1" behind a control plane at "cp",
// with every node routing through the epoch-versioned shard map.
func NewShardedWorld(users []string, cfg sim.Config, shards int) (*World, error) {
	net := sim.New(cfg)
	clk := clock.NewFake(time.Date(2003, 4, 21, 8, 0, 0, 0, time.UTC))
	list := make([]controlplane.Shard, shards)
	servers := make([]*directory.Server, shards)
	for i := 0; i < shards; i++ {
		id := fmt.Sprintf("shard%d", i)
		srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(time.Hour), directory.WithShard(id))
		ln, err := net.Listen(fmt.Sprintf("dir%d", i), srv.Handler())
		if err != nil {
			return nil, err
		}
		list[i] = controlplane.Shard{ID: id, Addr: ln.Addr()}
		servers[i] = srv
	}
	ctl := controlplane.NewController(list)
	for _, srv := range servers {
		ctl.Subscribe(srv.SetTable)
	}
	if _, err := net.Listen("cp", ctl.Handler()); err != nil {
		return nil, err
	}
	w := &World{
		Net:        net,
		Clk:        clk,
		Dir:        directory.NewShardedClient(net, "cp"),
		Mail:       notify.NewMailbox(),
		Cals:       map[string]*calendar.Calendar{},
		Nodes:      map[string]*core.Node{},
		Controller: ctl,
		CPAddr:     "cp",
	}
	for _, u := range users {
		if err := w.AddUser(u, 0); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// AddUser boots one more calendar node. Nodes record per-method
// metrics into the process default registry, so a sydbench run (or a
// test) can snapshot every layer's counts and latencies afterwards.
// Nodes run with the engine route cache at sydnode's production
// default TTL, so measured worlds match a deployed fleet; the cache
// invalidates eagerly on unreachable peers and proxy failover, which
// keeps the failover experiments honest.
func (w *World) AddUser(user string, priority int) error {
	ctx := context.Background()
	n, err := core.Start(ctx, core.Config{
		User: user, Net: w.Net, DirAddr: "dir", ControlPlaneAddr: w.CPAddr,
		Clock: w.Clk, Priority: priority,
		RouteCacheTTL: 2 * time.Second,
	}, core.WithMetrics(metrics.Default()))
	if err != nil {
		return err
	}
	c, err := calendar.New(ctx, n, calendar.WithNotifier(w.Mail))
	if err != nil {
		return err
	}
	w.Nodes[user] = n
	w.Cals[user] = c
	return nil
}

// Registry maps experiment ids to runners.
type Runner func() (*Result, error)

// All returns every experiment keyed by id, plus the sorted id list.
func All() (map[string]Runner, []string) {
	m := map[string]Runner{
		"F1":  RunF1,
		"F2":  RunF2,
		"F3":  RunF3,
		"F3s": RunF3Sharded,
		"F4":  RunF4,
		"E1":  RunE1,
		"E2":  RunE2,
		"E3":  RunE3,
		"E4":  RunE4,
		"E5":  RunE5,
		"E6":  RunE6,
		"T1":  RunT1,
		"T2":  RunT2,
		"A1":  RunA1,
		"A2":  RunA2,
	}
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return m, ids
}
