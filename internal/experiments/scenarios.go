package experiments

import (
	"context"
	"fmt"

	"repro/internal/calendar"
	"repro/internal/links"
	"repro/internal/sim"
)

const scenarioDay = "2003-04-21"

// scenarioWorld builds a small named-user deployment.
func scenarioWorld(users ...string) (*World, error) {
	return NewWorld(users, sim.Config{})
}

// RunE1 reproduces the §4.4 cancel-meeting scenario: cancelling a
// confirmed meeting cascades deleteLink across all participants,
// releases every slot, and automatically converts the highest-priority
// tentative meeting waiting on those slots.
func RunE1() (*Result, error) {
	res := &Result{
		ID:     "E1",
		Title:  "§4.4 cancel cascade: waiting-link promotion by priority",
		Header: []string{"event", "meeting", "status", "slot holder (b)"},
	}
	ctx := context.Background()
	w, err := scenarioWorld("a", "b", "x", "y")
	if err != nil {
		return nil, err
	}
	s := calendar.Slot{Day: scenarioDay, Hour: 10}
	report := func(event string, owner string, id string) {
		m, _ := w.Cals[owner].Meeting(id)
		res.AddRow(event, fmt.Sprintf("%s(%s)", m.Title, id[:6]), m.Status, w.Cals["b"].Slot(s).Meeting[:6])
	}

	m1, err := w.Cals["a"].SetupMeeting(ctx, calendar.Request{Title: "m1", Day: s.Day, Hour: s.Hour, PinSlot: true, Must: []string{"b"}})
	if err != nil {
		return nil, err
	}
	report("m1 scheduled", "a", m1.ID)
	mLow, err := w.Cals["x"].SetupMeeting(ctx, calendar.Request{Title: "low", Day: s.Day, Hour: s.Hour, PinSlot: true, Must: []string{"b"}, Priority: 1})
	if err != nil {
		return nil, err
	}
	report("low-prio waiter queued", "x", mLow.ID)
	mHigh, err := w.Cals["y"].SetupMeeting(ctx, calendar.Request{Title: "high", Day: s.Day, Hour: s.Hour, PinSlot: true, Must: []string{"b"}, Priority: 9})
	if err != nil {
		return nil, err
	}
	report("high-prio waiter queued", "y", mHigh.ID)

	if err := w.Cals["a"].CancelMeeting(ctx, m1.ID); err != nil {
		return nil, err
	}
	report("after cancel: m1", "a", m1.ID)
	report("after cancel: high", "y", mHigh.ID)
	report("after cancel: low", "x", mLow.ID)

	gotHigh, _ := w.Cals["y"].Meeting(mHigh.ID)
	gotLow, _ := w.Cals["x"].Meeting(mLow.ID)
	if gotHigh.Status != calendar.StatusConfirmed || gotLow.Status != calendar.StatusTentative {
		return res, fmt.Errorf("promotion order wrong: high=%s low=%s", gotHigh.Status, gotLow.Status)
	}
	res.AddNote("the higher-priority tentative meeting auto-confirmed; no human intervention after the cancel click")
	return res, nil
}

// RunE2 reproduces the §5 tentative-then-confirmed scenario: A,B,C,D
// meet; C is unavailable so the meeting is tentative with a tentative
// back link queued at C; when C frees the slot, the link fires and the
// meeting confirms.
func RunE2() (*Result, error) {
	res := &Result{
		ID:     "E2",
		Title:  "§5 tentative meeting auto-confirms when C frees up",
		Header: []string{"event", "status", "reserved", "missing"},
	}
	ctx := context.Background()
	w, err := scenarioWorld("a", "b", "c", "d")
	if err != nil {
		return nil, err
	}
	s := calendar.Slot{Day: scenarioDay, Hour: 14}
	if err := w.Cals["c"].MarkBusy(s, "class", 0); err != nil {
		return nil, err
	}
	m, err := w.Cals["a"].SetupMeeting(ctx, calendar.Request{
		Title: "e2", Day: s.Day, Hour: s.Hour, PinSlot: true, Must: []string{"b", "c", "d"},
	})
	if err != nil {
		return nil, err
	}
	res.AddRow("setup with C busy", m.Status, fmt.Sprintf("%v", m.Reserved), fmt.Sprintf("%v", m.Missing))
	cl, _ := w.Cals["c"].Links().GetLink(m.LinkID)
	res.AddRow("link at C", string(cl.Subtype), cl.Owner.Entity, "")

	if err := w.Cals["c"].ReleaseSlot(ctx, s); err != nil {
		return nil, err
	}
	got, _ := w.Cals["a"].Meeting(m.ID)
	res.AddRow("after C releases", got.Status, fmt.Sprintf("%v", got.Reserved), fmt.Sprintf("%v", got.Missing))
	if got.Status != calendar.StatusConfirmed {
		return res, fmt.Errorf("meeting did not auto-confirm: %s", got.Status)
	}
	res.AddNote("C's availability fired the tentative back link -> SlotAvailable at A -> renegotiation -> confirmed (§5)")
	return res, nil
}

// RunE3 reproduces the §5 reschedule/bump scenario: D cannot
// unilaterally change a confirmed meeting (back-link veto); a
// higher-priority meeting bumps the slot and the bumped meeting
// automatically reschedules when the slot frees.
func RunE3() (*Result, error) {
	res := &Result{
		ID:     "E3",
		Title:  "§5/§6 veto + priority bump + automatic rescheduling",
		Header: []string{"event", "outcome"},
	}
	ctx := context.Background()
	w, err := scenarioWorld("a", "b", "d", "x")
	if err != nil {
		return nil, err
	}
	s := calendar.Slot{Day: scenarioDay, Hour: 10}
	mLow, err := w.Cals["a"].SetupMeeting(ctx, calendar.Request{
		Title: "low", Day: s.Day, Hour: s.Hour, PinSlot: true, Must: []string{"b", "d"}, Priority: 1,
	})
	if err != nil {
		return nil, err
	}
	res.AddRow("low-prio meeting", mLow.Status)

	// D attempts a unilateral change: vetoed by the back link.
	_, verr := w.Cals["d"].Links().TriggerEntity(ctx, s.Entity(), "change", nil)
	res.AddRow("D unilateral change", fmt.Sprintf("vetoed=%v", verr != nil))
	if verr == nil {
		return res, fmt.Errorf("unilateral change not vetoed")
	}

	// x bumps with priority 9.
	mHigh, err := w.Cals["x"].SetupMeeting(ctx, calendar.Request{
		Title: "high", Day: s.Day, Hour: s.Hour, PinSlot: true, Must: []string{"b"},
		Priority: 9, AllowBump: true,
	})
	if err != nil {
		return nil, err
	}
	gotLow, _ := w.Cals["a"].Meeting(mLow.ID)
	res.AddRow("after bump", fmt.Sprintf("high=%s low=%s", mHigh.Status, gotLow.Status))
	if gotLow.Status != calendar.StatusTentative {
		return res, fmt.Errorf("bumped meeting is %s", gotLow.Status)
	}

	// Cancelling the high-priority meeting auto-reschedules the low.
	if err := w.Cals["x"].CancelMeeting(ctx, mHigh.ID); err != nil {
		return nil, err
	}
	gotLow, _ = w.Cals["a"].Meeting(mLow.ID)
	res.AddRow("after high cancel", fmt.Sprintf("low=%s", gotLow.Status))
	if gotLow.Status != calendar.StatusConfirmed {
		return res, fmt.Errorf("bumped meeting did not auto-reschedule: %s", gotLow.Status)
	}
	res.AddNote("the bumped meeting healed with zero human actions (§6's automatic rescheduling)")
	return res, nil
}

// RunE4 reproduces the §5 supervisor scenario: B's back link is
// subscription-only, so B's change is never vetoed; A renegotiates and
// the meeting recovers (or stays tentative).
func RunE4() (*Result, error) {
	res := &Result{
		ID:     "E4",
		Title:  "§5 supervisor: subscription back link, change at will",
		Header: []string{"event", "outcome"},
	}
	ctx := context.Background()
	w, err := scenarioWorld("a", "b", "c")
	if err != nil {
		return nil, err
	}
	s := calendar.Slot{Day: scenarioDay, Hour: 11}
	m, err := w.Cals["a"].SetupMeeting(ctx, calendar.Request{
		Title: "e4", Day: s.Day, Hour: s.Hour, PinSlot: true,
		Must: []string{"c"}, Supervisors: []string{"b"},
	})
	if err != nil {
		return nil, err
	}
	bl, _ := w.Cals["b"].Links().GetLink(m.LinkID)
	res.AddRow("B's back link type", string(bl.Type))
	if bl.Type != links.Subscription {
		return res, fmt.Errorf("supervisor link is %s", bl.Type)
	}
	// B changes his schedule: no veto.
	_, verr := w.Cals["b"].Links().TriggerEntity(ctx, s.Entity(), "change", nil)
	res.AddRow("B changes at will", fmt.Sprintf("vetoed=%v", verr != nil))
	if verr != nil {
		return res, fmt.Errorf("supervisor change vetoed: %v", verr)
	}
	got, _ := w.Cals["a"].Meeting(m.ID)
	res.AddRow("meeting after B's change", got.Status)
	res.AddNote("A was informed via the subscription link and renegotiated immediately (B still free -> re-confirmed)")
	return res, nil
}

// RunE6 reproduces the §3.2 design walkthrough: the SyD application
// object Calendars_of_phil+andy+suzy_SyDAppO with the two methods the
// paper names, Find_earliest_meeting_time() and
// Change_meeting_time_to_next_available().
func RunE6() (*Result, error) {
	res := &Result{
		ID:     "E6",
		Title:  "§3.2 SyDAppO: committee composite object and its named methods",
		Header: []string{"step", "result"},
	}
	ctx := context.Background()
	w, err := scenarioWorld("phil", "andy", "suzy")
	if err != nil {
		return nil, err
	}
	// Block the earliest candidate slots so the search has work to do.
	if err := w.Cals["andy"].MarkBusy(calendar.Slot{Day: scenarioDay, Hour: 9}, "x", 0); err != nil {
		return nil, err
	}
	if err := w.Cals["suzy"].MarkBusy(calendar.Slot{Day: scenarioDay, Hour: 10}, "x", 0); err != nil {
		return nil, err
	}

	cc := calendar.NewCommittee(w.Cals["phil"], "andy", "suzy")
	res.AddRow("SyDAppO name", cc.Name())

	earliest, err := cc.FindEarliestMeetingTime(ctx, scenarioDay, scenarioDay, nil)
	if err != nil {
		return nil, err
	}
	res.AddRow("Find_earliest_meeting_time()", earliest.String())
	if earliest.Hour != 11 {
		return res, fmt.Errorf("earliest = %v, want 11:00", earliest)
	}

	m, err := cc.ScheduleEarliest(ctx, "committee sync", scenarioDay, scenarioDay, 0)
	if err != nil {
		return nil, err
	}
	res.AddRow("scheduled", fmt.Sprintf("%s at %s", m.Status, m.Slot))

	// Andy gets busy at 12 — "next available" must skip to 13.
	if err := w.Cals["andy"].MarkBusy(calendar.Slot{Day: scenarioDay, Hour: 12}, "x", 0); err != nil {
		return nil, err
	}
	next, err := cc.ChangeMeetingTimeToNextAvailable(ctx, m.ID, 2)
	if err != nil {
		return nil, err
	}
	res.AddRow("Change_meeting_time_to_next_available()", next.String())
	if next.Hour != 13 {
		return res, fmt.Errorf("next = %v, want 13:00", next)
	}
	got, _ := w.Cals["phil"].Meeting(m.ID)
	res.AddRow("after move", fmt.Sprintf("%s at %s", got.Status, got.Slot))
	if got.Status != calendar.StatusConfirmed || got.Slot != next {
		return res, fmt.Errorf("meeting after move: %+v", got)
	}
	res.AddNote("the composite object runs purely on groupware calls — no member-local code, as §3.2 requires")
	return res, nil
}

// RunE5 reproduces the §5 quorum scenario: must{B,C} + 50%% of Biology
// + at least 2 of Physics via k-of-n negotiation-or links, including
// the cancellation quorum re-check.
func RunE5() (*Result, error) {
	res := &Result{
		ID:     "E5",
		Title:  "§5 quorum meeting: negotiation-or k-of-n groups",
		Header: []string{"event", "status", "reserved bio", "reserved phy"},
	}
	ctx := context.Background()
	users := []string{"a", "b", "c", "bio1", "bio2", "bio3", "bio4", "phy1", "phy2", "phy3"}
	w, err := scenarioWorld(users...)
	if err != nil {
		return nil, err
	}
	s := calendar.Slot{Day: scenarioDay, Hour: 13}
	req := calendar.Request{
		Title: "faculty", Day: s.Day, Hour: s.Hour, PinSlot: true,
		Must: []string{"b", "c"},
		OrGroups: []calendar.OrGroup{
			{Name: "biology", Members: []string{"bio1", "bio2", "bio3", "bio4"}, K: 2},
			{Name: "physics", Members: []string{"phy1", "phy2", "phy3"}, K: 2},
		},
	}
	countGroups := func(m *calendar.Meeting) (bio, phy int) {
		for _, u := range m.Reserved {
			if len(u) > 3 && u[:3] == "bio" {
				bio++
			}
			if len(u) > 3 && u[:3] == "phy" {
				phy++
			}
		}
		return
	}

	m, err := w.Cals["a"].SetupMeeting(ctx, req)
	if err != nil {
		return nil, err
	}
	bio, phy := countGroups(m)
	res.AddRow("all free", m.Status, fmt.Sprintf("%d/4 (k=2)", bio), fmt.Sprintf("%d/3 (k=2)", phy))
	if m.Status != calendar.StatusConfirmed {
		return res, fmt.Errorf("quorum setup not confirmed")
	}

	// A reserved biologist drops out; quorum still holds if >=2 remain.
	var droppedBio string
	for _, u := range m.Reserved {
		if len(u) > 3 && u[:3] == "bio" {
			droppedBio = u
			break
		}
	}
	if err := w.Cals[droppedBio].DropOut(ctx, m.ID); err != nil {
		return nil, err
	}
	got, _ := w.Cals["a"].Meeting(m.ID)
	bio, phy = countGroups(got)
	res.AddRow(droppedBio+" drops out", got.Status, fmt.Sprintf("%d/4 (k=2)", bio), fmt.Sprintf("%d/3 (k=2)", phy))

	// The §5 rule: the cancellation is granted as long as the quorum
	// holds; a fourth free biologist can backfill via TryConfirm.
	if _, err := w.Cals["a"].TryConfirm(ctx, m.ID); err != nil {
		return nil, err
	}
	got, _ = w.Cals["a"].Meeting(m.ID)
	bio, phy = countGroups(got)
	res.AddRow("after re-check", got.Status, fmt.Sprintf("%d/4 (k=2)", bio), fmt.Sprintf("%d/3 (k=2)", phy))
	if got.Status != calendar.StatusConfirmed {
		return res, fmt.Errorf("quorum did not recover: %s", got.Status)
	}
	res.AddNote("quorum failure at setup reserves nobody in the failing group (atomic k-of-n), matching §4.3")
	return res, nil
}
