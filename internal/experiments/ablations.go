package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/calendar"
	"repro/internal/links"
	"repro/internal/notify"
	"repro/internal/proxy"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/wire"
	"repro/internal/workload"
)

// startCalendarProxy adds a calendar-aware proxy host to a world.
func startCalendarProxy(w *World, id string) error {
	_, err := proxy.StartHost(context.Background(), proxy.HostConfig{
		ID: id, Net: w.Net, DirAddr: "dir",
		Adopter: calendar.NewProxyAdopter(w.Net, "dir", notify.Discard{}),
	})
	return err
}

// RunA1 ablates the lock-acquisition strategy for negotiation-and
// (DESIGN.md §5 decision 1): globally ordered sequential marking (the
// implementation's And path) versus unordered parallel marking
// (obtained by running Or with k=n, which marks concurrently and needs
// every lock). Under contention the ordered strategy wastes fewer
// marks and never deadlocks; parallel marking admits "both fail"
// rounds where racers clinch one lock each and abort.
func RunA1() (*Result, error) {
	res := &Result{
		ID:     "A1",
		Title:  "ablation: ordered sequential vs parallel marking for and-negotiations",
		Header: []string{"strategy", "rounds", "one-winner rounds", "zero-winner rounds"},
	}
	ctx := context.Background()
	const rounds = 30

	run := func(name string, constraint links.Constraint, k int) (int, int, error) {
		oneWinner, zeroWinner := 0, 0
		for r := 0; r < rounds; r++ {
			users := []string{"r1", "r2", "tx", "ty"}
			// Latency + jitter widen the mark/lock window so the
			// racers genuinely interleave and per-target arrival
			// order varies between rounds.
			w, err := NewWorld(users, sim.Config{
				Seed:        int64(r),
				BaseLatency: 100 * time.Microsecond,
				Jitter:      800 * time.Microsecond,
			})
			if err != nil {
				return 0, 0, err
			}
			slot := calendar.Slot{Day: "2003-04-21", Hour: 10}
			targets := []links.EntityRef{
				{User: "tx", Entity: slot.Entity()},
				{User: "ty", Entity: slot.Entity()},
			}
			var wg sync.WaitGroup
			wins := make([]bool, 2)
			for i, racer := range []string{"r1", "r2"} {
				wg.Add(1)
				go func(i int, racer string) {
					defer wg.Done()
					// Reverse target order for the second racer to
					// maximize lock collisions under parallel marking.
					tg := targets
					if i == 1 {
						tg = []links.EntityRef{targets[1], targets[0]}
					}
					_, err := w.Cals[racer].Links().Negotiate(ctx, links.Spec{
						Action:     calendar.ActionReserve,
						Args:       wire.Args{"meeting": fmt.Sprintf("a1-%s", racer), "priority": 0},
						Targets:    tg,
						Constraint: constraint,
						K:          k,
					})
					wins[i] = err == nil
				}(i, racer)
			}
			wg.Wait()
			n := 0
			for _, okv := range wins {
				if okv {
					n++
				}
			}
			switch n {
			case 1:
				oneWinner++
			case 0:
				zeroWinner++
			default:
				return 0, 0, fmt.Errorf("%s: two winners in one round", name)
			}
		}
		return oneWinner, zeroWinner, nil
	}

	oneA, zeroA, err := run("ordered", links.And, 0)
	if err != nil {
		return nil, err
	}
	res.AddRow("ordered sequential (And)", fmt.Sprintf("%d", rounds), fmt.Sprintf("%d", oneA), fmt.Sprintf("%d", zeroA))

	oneB, zeroB, err := run("parallel", links.Or, 2) // k=n: all must lock, marked in parallel
	if err != nil {
		return nil, err
	}
	res.AddRow("parallel marking (Or k=n)", fmt.Sprintf("%d", rounds), fmt.Sprintf("%d", oneB), fmt.Sprintf("%d", zeroB))

	res.AddNote("ordered marking guarantees a winner whenever racers share the same global order; parallel marking admits zero-winner (livelock-retry) rounds — never deadlock, because marks are try-locks")
	if zeroA != 0 {
		return res, fmt.Errorf("ordered strategy produced %d zero-winner rounds with identical orders", zeroA)
	}
	return res, nil
}

// RunA2 ablates the trigger placement (DESIGN.md §5 decision 2): the
// paper's prototype used Oracle triggers inside the database (§5.3)
// and planned to move them into the middleware. We wire the same
// reaction ("slot reserved -> record an audit row") both ways — a
// store-level After trigger and a middleware subscription link — and
// show they observe identical sequences, while only the middleware
// path works across heterogeneous stores.
func RunA2() (*Result, error) {
	res := &Result{
		ID:     "A2",
		Title:  "ablation: store-level triggers vs middleware (SyDLinks) triggers",
		Header: []string{"path", "events observed", "per-op cost", "portable across stores"},
	}
	ctx := context.Background()
	const ops = 200

	// Path 1: store trigger (the Oracle way).
	{
		db := store.NewDB()
		tab := db.MustCreateTable(store.Schema{
			Name: "slots",
			Columns: []store.Column{
				{Name: "id", Type: store.Int},
				{Name: "status", Type: store.String},
			},
			Key: []string{"id"},
		})
		events := 0
		tab.OnTrigger(store.After, store.OpInsert, "audit", func(op store.Op, old, new store.Row) error {
			events++
			return nil
		})
		start := time.Now()
		for i := 0; i < ops; i++ {
			if err := tab.Insert(store.Row{"id": int64(i), "status": "reserved"}); err != nil {
				return nil, err
			}
		}
		res.AddRow("store trigger (Oracle-style, §5.3)",
			fmt.Sprintf("%d/%d", events, ops),
			fmt.Sprintf("%dns", time.Since(start).Nanoseconds()/ops),
			"no — tied to one database engine")
		if events != ops {
			return res, fmt.Errorf("store path observed %d of %d", events, ops)
		}
	}

	// Path 2: middleware trigger (subscription link firing an action).
	{
		w, err := NewWorld(workload.Users(2), sim.Config{})
		if err != nil {
			return nil, err
		}
		observed := 0
		var mu sync.Mutex
		w.Cals["u01"].Links().RegisterAction("audit", links.Action{
			Apply: func(entity string, args wire.Args) error {
				mu.Lock()
				observed++
				mu.Unlock()
				return nil
			},
		})
		lm := w.Cals["u00"].Links()
		l := &links.Link{
			ID: "A2-sub", Type: links.Subscription, Subtype: links.Permanent,
			Owner:    links.EntityRef{User: "u00", Entity: "slot:2003-04-21:9"},
			Targets:  []links.EntityRef{{User: "u01", Entity: "audit-log"}},
			Triggers: []links.Trigger{{Event: "change", Action: "audit"}},
		}
		if err := lm.AddLink(l); err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < ops; i++ {
			if _, err := lm.TriggerEntity(ctx, "slot:2003-04-21:9", "change", wire.Args{"i": i}); err != nil {
				return nil, err
			}
		}
		mu.Lock()
		got := observed
		mu.Unlock()
		res.AddRow("middleware trigger (SyDLinks)",
			fmt.Sprintf("%d/%d", got, ops),
			fmt.Sprintf("%dns", time.Since(start).Nanoseconds()/ops),
			"yes — store-agnostic, crosses devices")
		if got != ops {
			return res, fmt.Errorf("middleware path observed %d of %d", got, ops)
		}
	}
	res.AddNote("both paths observe every change; the middleware path additionally crosses the network, which is why §5.3 plans to abandon Oracle triggers")
	return res, nil
}
