package workload

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/baseline"
)

func TestUsers(t *testing.T) {
	got := Users(3)
	want := []string{"u00", "u01", "u02"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Users = %v", got)
	}
}

func TestWindowBounds(t *testing.T) {
	w := DefaultWindow()
	if w.FromDay() != "2003-04-21" || w.ToDay() != "2003-04-25" {
		t.Fatalf("window = %s..%s", w.FromDay(), w.ToDay())
	}
	slots := w.Slots()
	if len(slots) != w.Days*len(w.Hours) {
		t.Fatalf("slots = %d", len(slots))
	}
	if slots[0].Day != "2003-04-21" || slots[len(slots)-1].Day != "2003-04-25" {
		t.Fatalf("slot days wrong: %v .. %v", slots[0], slots[len(slots)-1])
	}
	bs := w.BaselineSlots()
	if len(bs) != len(slots) || bs[0] != (baseline.Slot{Day: "2003-04-21", Hour: w.Hours[0]}) {
		t.Fatalf("baseline slots = %v...", bs[0])
	}
}

func TestBusyPlanReproducible(t *testing.T) {
	users := Users(5)
	w := DefaultWindow()
	a := MakeBusyPlan(users, w, 0.3, 42)
	b := MakeBusyPlan(users, w, 0.3, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed diverged")
	}
	c := MakeBusyPlan(users, w, 0.3, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds agree (suspicious)")
	}
	// Density is roughly honored.
	total, busy := 0, 0
	for _, u := range users {
		total += len(w.Slots())
		busy += len(a[u])
	}
	frac := float64(busy) / float64(total)
	if frac < 0.15 || frac > 0.45 {
		t.Fatalf("density = %f", frac)
	}
}

func TestMeetingPlansShape(t *testing.T) {
	users := Users(6)
	plans := MakeMeetingPlans(users, 10, 3, 7)
	if len(plans) != 10 {
		t.Fatalf("plans = %d", len(plans))
	}
	for _, p := range plans {
		if len(p.Participants) != 3 {
			t.Fatalf("fanout = %d", len(p.Participants))
		}
		for _, q := range p.Participants {
			if q == p.Initiator {
				t.Fatal("initiator among participants")
			}
		}
	}
	// Fanout is clamped to the population size.
	small := MakeMeetingPlans(Users(3), 2, 10, 7)
	for _, p := range small {
		if len(p.Participants) != 2 {
			t.Fatalf("clamped fanout = %d", len(p.Participants))
		}
	}
	// Reproducible.
	again := MakeMeetingPlans(users, 10, 3, 7)
	if !reflect.DeepEqual(plans, again) {
		t.Fatal("same seed diverged")
	}
}

// TestUsersPaddingScalesWithPopulation: at n >= 100 the old fixed
// "u%02d" format produced mixed-width ids (u99, u100) whose
// lexicographic order diverged from numeric order, breaking shard
// range splits. Padding must widen with the population.
func TestUsersPaddingScalesWithPopulation(t *testing.T) {
	for _, n := range []int{1, 10, 99, 100, 101, 1000, 10000} {
		ids := Users(n)
		if len(ids) != n {
			t.Fatalf("Users(%d) returned %d ids", n, len(ids))
		}
		width := len(ids[0])
		for i, id := range ids {
			if len(id) != width {
				t.Fatalf("Users(%d): mixed widths %q vs %q", n, ids[0], id)
			}
			if i > 0 && !(ids[i-1] < id) {
				t.Fatalf("Users(%d): lexicographic order broken at %q >= %q", n, ids[i-1], id)
			}
		}
	}
	// Small populations keep the legacy two-digit shape so existing
	// fixtures and goldens are untouched.
	if got := Users(5)[4]; got != "u04" {
		t.Fatalf("Users(5)[4] = %q, want u04", got)
	}
	if got := Users(1000)[7]; got != "u007" {
		t.Fatalf("Users(1000)[7] = %q, want u007", got)
	}
}

func TestZipfPickerSkewAndDeterminism(t *testing.T) {
	const n = 1000
	a := NewZipfPicker(n, 1.3, 42)
	b := NewZipfPicker(n, 1.3, 42)
	counts := make([]int, n)
	for i := 0; i < 20000; i++ {
		x, y := a.Pick(), b.Pick()
		if x != y {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, x, y)
		}
		counts[x]++
	}
	// The head must dominate the tail.
	head := counts[0] + counts[1] + counts[2]
	tail := counts[n-3] + counts[n-2] + counts[n-1]
	if head <= tail*10 {
		t.Fatalf("no skew: head %d, tail %d", head, tail)
	}
}

func TestZipfPickSetDistinctAndExcluding(t *testing.T) {
	p := NewZipfPicker(10, 1.5, 7)
	for i := 0; i < 200; i++ {
		set := p.PickSet(4, 3)
		seen := map[int]bool{}
		for _, idx := range set {
			if idx == 3 {
				t.Fatal("excluded index drawn")
			}
			if seen[idx] {
				t.Fatalf("duplicate index %d in %v", idx, set)
			}
			seen[idx] = true
		}
		if len(set) != 4 {
			t.Fatalf("set size %d, want 4", len(set))
		}
	}
	// k larger than the population clamps.
	if set := p.PickSet(99, 0); len(set) != 9 {
		t.Fatalf("clamped set size %d, want 9", len(set))
	}
}

func TestPoissonArrivalsSortedWithinHorizon(t *testing.T) {
	horizon := 8 * time.Hour
	a := PoissonArrivals(5000, horizon, 11)
	b := PoissonArrivals(5000, horizon, 11)
	for i, at := range a {
		if at < 0 || at >= horizon {
			t.Fatalf("arrival %d out of horizon: %v", i, at)
		}
		if i > 0 && at < a[i-1] {
			t.Fatalf("arrivals unsorted at %d", i)
		}
		if at != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestSkewedMeetingPlansShape(t *testing.T) {
	users := Users(500)
	plans := SkewedMeetingPlans(users, 300, 4, 1.2, 99)
	if len(plans) != 300 {
		t.Fatalf("got %d plans", len(plans))
	}
	for _, p := range plans {
		if len(p.Participants) != 4 {
			t.Fatalf("fanout %d, want 4", len(p.Participants))
		}
		for _, q := range p.Participants {
			if q == p.Initiator {
				t.Fatal("initiator drawn as participant")
			}
		}
	}
}

func TestHotSetSize(t *testing.T) {
	k := HotSetSize(1000, 1.3, 0.5)
	if k <= 0 || k >= 1000 {
		t.Fatalf("hot set size %d not a strict head", k)
	}
	if all := HotSetSize(10, 1.3, 1.0); all != 10 {
		t.Fatalf("full mass should need every user, got %d", all)
	}
}
