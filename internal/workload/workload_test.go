package workload

import (
	"reflect"
	"testing"

	"repro/internal/baseline"
)

func TestUsers(t *testing.T) {
	got := Users(3)
	want := []string{"u00", "u01", "u02"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Users = %v", got)
	}
}

func TestWindowBounds(t *testing.T) {
	w := DefaultWindow()
	if w.FromDay() != "2003-04-21" || w.ToDay() != "2003-04-25" {
		t.Fatalf("window = %s..%s", w.FromDay(), w.ToDay())
	}
	slots := w.Slots()
	if len(slots) != w.Days*len(w.Hours) {
		t.Fatalf("slots = %d", len(slots))
	}
	if slots[0].Day != "2003-04-21" || slots[len(slots)-1].Day != "2003-04-25" {
		t.Fatalf("slot days wrong: %v .. %v", slots[0], slots[len(slots)-1])
	}
	bs := w.BaselineSlots()
	if len(bs) != len(slots) || bs[0] != (baseline.Slot{Day: "2003-04-21", Hour: w.Hours[0]}) {
		t.Fatalf("baseline slots = %v...", bs[0])
	}
}

func TestBusyPlanReproducible(t *testing.T) {
	users := Users(5)
	w := DefaultWindow()
	a := MakeBusyPlan(users, w, 0.3, 42)
	b := MakeBusyPlan(users, w, 0.3, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed diverged")
	}
	c := MakeBusyPlan(users, w, 0.3, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds agree (suspicious)")
	}
	// Density is roughly honored.
	total, busy := 0, 0
	for _, u := range users {
		total += len(w.Slots())
		busy += len(a[u])
	}
	frac := float64(busy) / float64(total)
	if frac < 0.15 || frac > 0.45 {
		t.Fatalf("density = %f", frac)
	}
}

func TestMeetingPlansShape(t *testing.T) {
	users := Users(6)
	plans := MakeMeetingPlans(users, 10, 3, 7)
	if len(plans) != 10 {
		t.Fatalf("plans = %d", len(plans))
	}
	for _, p := range plans {
		if len(p.Participants) != 3 {
			t.Fatalf("fanout = %d", len(p.Participants))
		}
		for _, q := range p.Participants {
			if q == p.Initiator {
				t.Fatal("initiator among participants")
			}
		}
	}
	// Fanout is clamped to the population size.
	small := MakeMeetingPlans(Users(3), 2, 10, 7)
	for _, p := range small {
		if len(p.Participants) != 2 {
			t.Fatalf("clamped fanout = %d", len(p.Participants))
		}
	}
	// Reproducible.
	again := MakeMeetingPlans(users, 10, 3, 7)
	if !reflect.DeepEqual(plans, again) {
		t.Fatal("same seed diverged")
	}
}
