// Package workload generates reproducible calendar populations and
// meeting request streams for the experiment harness (DESIGN.md T1/T2).
// All generators are seeded so every run of an experiment sees the
// same world.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/calendar"
)

// Users returns n synthetic user ids u00..u(n-1). Ids are zero-padded
// to the width of the largest index (minimum two digits) so that
// lexicographic order equals numeric order at any population size —
// directory listings, shard range splits, and sorted test fixtures all
// rely on that equivalence.
func Users(n int) []string {
	width := len(fmt.Sprint(n - 1))
	if width < 2 {
		width = 2
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("u%0*d", width, i)
	}
	return out
}

// Window is a scheduling window: consecutive days starting at Start.
type Window struct {
	Start time.Time
	Days  int
	Hours []int
}

// DefaultWindow is one working week starting 2003-04-21 (the paper's
// era) with the default business hours.
func DefaultWindow() Window {
	return Window{
		Start: time.Date(2003, 4, 21, 0, 0, 0, 0, time.UTC),
		Days:  5,
		Hours: append([]int(nil), calendar.DefaultHours...),
	}
}

// FromDay / ToDay format the window bounds.
func (w Window) FromDay() string { return w.Start.Format("2006-01-02") }

// ToDay returns the last day of the window.
func (w Window) ToDay() string {
	return w.Start.AddDate(0, 0, w.Days-1).Format("2006-01-02")
}

// Slots enumerates every slot in the window.
func (w Window) Slots() []calendar.Slot {
	var out []calendar.Slot
	for d := 0; d < w.Days; d++ {
		day := w.Start.AddDate(0, 0, d).Format("2006-01-02")
		for _, h := range w.Hours {
			out = append(out, calendar.Slot{Day: day, Hour: h})
		}
	}
	return out
}

// BaselineSlots converts window slots to baseline slots.
func (w Window) BaselineSlots() []baseline.Slot {
	slots := w.Slots()
	out := make([]baseline.Slot, len(slots))
	for i, s := range slots {
		out[i] = baseline.Slot{Day: s.Day, Hour: s.Hour}
	}
	return out
}

// BusyPlan maps each user to the slots pre-occupied by personal
// appointments, drawn with the given density in [0,1).
type BusyPlan map[string][]calendar.Slot

// MakeBusyPlan draws a reproducible busy plan.
func MakeBusyPlan(users []string, w Window, density float64, seed int64) BusyPlan {
	rng := rand.New(rand.NewSource(seed))
	slots := w.Slots()
	plan := make(BusyPlan, len(users))
	for _, u := range users {
		var busy []calendar.Slot
		for _, s := range slots {
			if rng.Float64() < density {
				busy = append(busy, s)
			}
		}
		plan[u] = busy
	}
	return plan
}

// ApplyToCalendar marks the plan's slots busy on a SyD calendar.
func (p BusyPlan) ApplyToCalendar(user string, c *calendar.Calendar) error {
	for _, s := range p[user] {
		if err := c.MarkBusy(s, "appt", 0); err != nil {
			return err
		}
	}
	return nil
}

// ApplyToBaseline marks the plan's slots busy in a baseline system.
func (p BusyPlan) ApplyToBaseline(s *baseline.System) {
	for u, slots := range p {
		for _, sl := range slots {
			s.MarkBusy(u, baseline.Slot{Day: sl.Day, Hour: sl.Hour}, "appt")
		}
	}
}

// MeetingPlan is one synthetic meeting request: an initiator and a
// participant set drawn from the population.
type MeetingPlan struct {
	Initiator    string
	Participants []string
	Priority     int
}

// MakeMeetingPlans draws count reproducible meeting requests, each
// with fanout participants distinct from the initiator.
func MakeMeetingPlans(users []string, count, fanout int, seed int64) []MeetingPlan {
	rng := rand.New(rand.NewSource(seed))
	if fanout >= len(users) {
		fanout = len(users) - 1
	}
	plans := make([]MeetingPlan, count)
	for i := range plans {
		perm := rng.Perm(len(users))
		initiator := users[perm[0]]
		parts := make([]string, 0, fanout)
		for _, idx := range perm[1 : fanout+1] {
			parts = append(parts, users[idx])
		}
		plans[i] = MeetingPlan{
			Initiator:    initiator,
			Participants: parts,
			Priority:     rng.Intn(10),
		}
	}
	return plans
}
