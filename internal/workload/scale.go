// Scale-harness generators: open-loop arrival schedules and skewed
// participant selection for fleet-sized populations (ROADMAP item 4).
// Everything here is pure and seeded — the same (population, seed)
// always yields the same schedule, which is what lets the scale
// harness promise byte-identical runs.
package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// ZipfPicker draws user indices with a Zipf-skewed distribution: a few
// hot users (executives, shared rooms) appear in many meetings while
// the long tail appears rarely. Skew s > 1 controls how hot the head
// is; s near 1 is mild, 2+ is extreme.
type ZipfPicker struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	n    int
}

// NewZipfPicker builds a picker over n users with skew s (clamped to a
// minimum of 1.01; rand.Zipf requires s > 1).
func NewZipfPicker(n int, s float64, seed int64) *ZipfPicker {
	if s <= 1 {
		s = 1.01
	}
	rng := rand.New(rand.NewSource(seed))
	return &ZipfPicker{
		rng:  rng,
		zipf: rand.NewZipf(rng, s, 1, uint64(n-1)),
		n:    n,
	}
}

// Pick draws one user index in [0, n).
func (z *ZipfPicker) Pick() int { return int(z.zipf.Uint64()) }

// PickSet draws k distinct user indices, none equal to exclude. The
// skew still applies: hot users land in most sets.
func (z *ZipfPicker) PickSet(k, exclude int) []int {
	if k > z.n-1 {
		k = z.n - 1
	}
	seen := map[int]bool{exclude: true}
	out := make([]int, 0, k)
	for len(out) < k {
		idx := z.Pick()
		for seen[idx] {
			// Collision on a hot user: walk to the nearest free index
			// instead of re-drawing, bounding the loop even when k
			// approaches n.
			idx = (idx + 1) % z.n
		}
		seen[idx] = true
		out = append(out, idx)
	}
	return out
}

// PoissonArrivals draws an open-loop arrival schedule: count offsets
// in [0, horizon) whose gaps are exponentially distributed (a Poisson
// process conditioned on its count), sorted ascending. Open-loop means
// the offsets do not depend on how long any operation takes — load
// keeps arriving whether or not the system keeps up, which is what
// exposes queueing collapse.
func PoissonArrivals(count int, horizon time.Duration, seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, count)
	for i := range out {
		// Uniform order statistics of a Poisson process are i.i.d.
		// uniforms; sorting yields the arrival times.
		out[i] = time.Duration(rng.Float64() * float64(horizon))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ExpDuration draws an exponentially distributed duration with the
// given mean (for service times and think times).
func ExpDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	// Clamp the heavy tail so one 10-sigma draw cannot dominate a
	// percentile report.
	if max := 10 * mean; d > max {
		d = max
	}
	return d
}

// SkewedMeetingPlans draws count meeting requests whose initiators and
// participants follow a Zipf distribution over the population — the
// contention-heavy cousin of MakeMeetingPlans, where the same hot
// calendars are negotiated over and over (the nonlinear abort-rate
// regime).
func SkewedMeetingPlans(users []string, count, fanout int, skew float64, seed int64) []MeetingPlan {
	if fanout >= len(users) {
		fanout = len(users) - 1
	}
	picker := NewZipfPicker(len(users), skew, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	plans := make([]MeetingPlan, count)
	for i := range plans {
		init := picker.Pick()
		set := picker.PickSet(fanout, init)
		parts := make([]string, len(set))
		for j, idx := range set {
			parts[j] = users[idx]
		}
		plans[i] = MeetingPlan{
			Initiator:    users[init],
			Participants: parts,
			Priority:     rng.Intn(10),
		}
	}
	return plans
}

// HotSetSize reports how many distinct users cover the head of a Zipf
// distribution with the given skew — a convenience for sizing the
// replicated topology's hub set (replicate the users that see the
// most traffic). It returns the smallest k such that indices [0,k)
// receive at least frac of the probability mass.
func HotSetSize(n int, skew, frac float64) int {
	if n <= 0 {
		return 0
	}
	if skew <= 1 {
		skew = 1.01
	}
	total := 0.0
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		w := math.Pow(float64(i+1), -skew)
		weights[i] = w
		total += w
	}
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += weights[i]
		if acc/total >= frac {
			return i + 1
		}
	}
	return n
}
