// Package notify delivers meeting notifications. The paper's prototype
// notified participants "about the details of the meeting using an
// e-mail message" (§5.1); offline we provide an in-memory mailbox with
// an RFC-822-style rendering so experiments can assert on deliveries,
// plus a writer-backed notifier for the CLI binaries.
package notify

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Message is one notification.
type Message struct {
	To      []string
	Subject string
	Body    string
	Sent    time.Time
}

// Render formats the message in a familiar e-mail shape.
func (m Message) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "To: %s\n", strings.Join(m.To, ", "))
	fmt.Fprintf(&b, "Subject: %s\n", m.Subject)
	if !m.Sent.IsZero() {
		fmt.Fprintf(&b, "Date: %s\n", m.Sent.Format(time.RFC1123Z))
	}
	b.WriteString("\n")
	b.WriteString(m.Body)
	if !strings.HasSuffix(m.Body, "\n") {
		b.WriteString("\n")
	}
	return b.String()
}

// Notifier delivers messages.
type Notifier interface {
	Notify(ctx context.Context, m Message) error
}

// Discard drops every message (the default when an application does
// not configure notifications).
type Discard struct{}

// Notify implements Notifier.
func (Discard) Notify(context.Context, Message) error { return nil }

// Mailbox is an in-memory Notifier with per-recipient inboxes. Safe
// for concurrent use.
type Mailbox struct {
	mu     sync.Mutex
	boxes  map[string][]Message
	sentAt func() time.Time
}

// NewMailbox creates an empty mailbox.
func NewMailbox() *Mailbox {
	return &Mailbox{boxes: make(map[string][]Message), sentAt: time.Now}
}

// SetClock overrides the send timestamp source (tests).
func (mb *Mailbox) SetClock(now func() time.Time) { mb.sentAt = now }

// Notify implements Notifier: the message is copied into every
// recipient's inbox.
func (mb *Mailbox) Notify(_ context.Context, m Message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	m.Sent = mb.sentAt()
	for _, to := range m.To {
		mb.boxes[to] = append(mb.boxes[to], m)
	}
	return nil
}

// Inbox returns a copy of the recipient's inbox in delivery order.
func (mb *Mailbox) Inbox(user string) []Message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return append([]Message(nil), mb.boxes[user]...)
}

// Count returns the number of messages delivered to user.
func (mb *Mailbox) Count(user string) int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.boxes[user])
}

// Total returns the number of deliveries across all inboxes.
func (mb *Mailbox) Total() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	n := 0
	for _, box := range mb.boxes {
		n += len(box)
	}
	return n
}

// Recipients lists users with at least one message, sorted.
func (mb *Mailbox) Recipients() []string {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	out := make([]string, 0, len(mb.boxes))
	for u := range mb.boxes {
		if len(mb.boxes[u]) > 0 {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}

// Reset clears every inbox.
func (mb *Mailbox) Reset() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.boxes = make(map[string][]Message)
}

// Writer is a Notifier that renders every message to an io.Writer
// (used by the CLI binaries to print notifications).
type Writer struct {
	mu sync.Mutex
	W  io.Writer
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{W: w} }

// Notify implements Notifier.
func (wn *Writer) Notify(_ context.Context, m Message) error {
	wn.mu.Lock()
	defer wn.mu.Unlock()
	_, err := io.WriteString(wn.W, m.Render()+"\n")
	return err
}

// Fanout duplicates notifications to several notifiers.
type Fanout []Notifier

// Notify implements Notifier; the first error wins but all notifiers
// are attempted.
func (f Fanout) Notify(ctx context.Context, m Message) error {
	var firstErr error
	for _, n := range f {
		if err := n.Notify(ctx, m); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
