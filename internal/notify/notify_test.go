package notify

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestMailboxDelivery(t *testing.T) {
	mb := NewMailbox()
	ctx := context.Background()
	msg := Message{To: []string{"phil", "andy"}, Subject: "Meeting M1 confirmed", Body: "2003-04-22 14:00"}
	if err := mb.Notify(ctx, msg); err != nil {
		t.Fatal(err)
	}
	if mb.Count("phil") != 1 || mb.Count("andy") != 1 || mb.Count("suzy") != 0 {
		t.Fatalf("counts = %d %d %d", mb.Count("phil"), mb.Count("andy"), mb.Count("suzy"))
	}
	if mb.Total() != 2 {
		t.Fatalf("total = %d", mb.Total())
	}
	in := mb.Inbox("phil")
	if len(in) != 1 || in[0].Subject != "Meeting M1 confirmed" {
		t.Fatalf("inbox = %+v", in)
	}
	if got := mb.Recipients(); !reflect.DeepEqual(got, []string{"andy", "phil"}) {
		t.Fatalf("recipients = %v", got)
	}
	mb.Reset()
	if mb.Total() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestMailboxTimestamps(t *testing.T) {
	mb := NewMailbox()
	fixed := time.Date(2003, 4, 22, 9, 0, 0, 0, time.UTC)
	mb.SetClock(func() time.Time { return fixed })
	if err := mb.Notify(context.Background(), Message{To: []string{"phil"}, Subject: "s"}); err != nil {
		t.Fatal(err)
	}
	if got := mb.Inbox("phil")[0].Sent; !got.Equal(fixed) {
		t.Fatalf("sent = %v", got)
	}
}

func TestMessageRender(t *testing.T) {
	m := Message{
		To:      []string{"phil", "andy"},
		Subject: "Meeting cancelled",
		Body:    "The 14:00 meeting was cancelled.",
		Sent:    time.Date(2003, 4, 22, 9, 0, 0, 0, time.UTC),
	}
	got := m.Render()
	for _, want := range []string{"To: phil, andy\n", "Subject: Meeting cancelled\n", "Date: ", "cancelled.\n"} {
		if !strings.Contains(got, want) {
			t.Fatalf("render missing %q:\n%s", want, got)
		}
	}
}

func TestWriterNotifier(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Notify(context.Background(), Message{To: []string{"phil"}, Subject: "hello"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Subject: hello") {
		t.Fatalf("output = %q", buf.String())
	}
}

func TestDiscard(t *testing.T) {
	if err := (Discard{}).Notify(context.Background(), Message{To: []string{"x"}}); err != nil {
		t.Fatal(err)
	}
}

type failing struct{}

func (failing) Notify(context.Context, Message) error { return errors.New("smtp down") }

func TestFanout(t *testing.T) {
	mb := NewMailbox()
	f := Fanout{failing{}, mb}
	err := f.Notify(context.Background(), Message{To: []string{"phil"}, Subject: "s"})
	if err == nil {
		t.Fatal("fanout swallowed the error")
	}
	if mb.Count("phil") != 1 {
		t.Fatal("fanout did not attempt all notifiers")
	}
}
