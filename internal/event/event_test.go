package event

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/directory"
	"repro/internal/engine"
	"repro/internal/listener"
	"repro/internal/sim"
	"repro/internal/wire"
)

func TestLocalSubscribeRaise(t *testing.T) {
	net := sim.New(sim.Config{})
	h := New("phil", net, nil)
	var got []*wire.Event
	h.Subscribe("slot.changed", "s1", func(ev *wire.Event) { got = append(got, ev) })
	h.Raise(context.Background(), "slot.changed", wire.Args{"slot": "mon-9"})
	if len(got) != 1 || got[0].Args.String("slot") != "mon-9" || got[0].Source != "phil" {
		t.Fatalf("got = %+v", got)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	net := sim.New(sim.Config{})
	h := New("phil", net, nil)
	count := 0
	h.Subscribe("e", "s1", func(*wire.Event) { count++ })
	h.Raise(context.Background(), "e", nil)
	h.Unsubscribe("e", "s1")
	h.Raise(context.Background(), "e", nil)
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
}

func TestSubscribeReplacesSameID(t *testing.T) {
	net := sim.New(sim.Config{})
	h := New("phil", net, nil)
	var a, b int
	h.Subscribe("e", "s1", func(*wire.Event) { a++ })
	h.Subscribe("e", "s1", func(*wire.Event) { b++ })
	h.Raise(context.Background(), "e", nil)
	if a != 0 || b != 1 {
		t.Fatalf("a=%d b=%d", a, b)
	}
}

func TestDispatchOrderDeterministic(t *testing.T) {
	net := sim.New(sim.Config{})
	h := New("phil", net, nil)
	var order []string
	for _, id := range []string{"c", "a", "b"} {
		id := id
		h.Subscribe("e", id, func(*wire.Event) { order = append(order, id) })
	}
	h.Raise(context.Background(), "e", nil)
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestRemoteSubscriptionDelivery(t *testing.T) {
	net := sim.New(sim.Config{})
	// phil's node raises events; andy's node receives them.
	philH := New("phil", net, nil)
	andyH := New("andy", net, nil)

	andyL := listener.New("andy", nil)
	andyL.SetEventSink(andyH.Dispatch)
	andyLn, err := net.Listen("node-andy", andyL)
	if err != nil {
		t.Fatal(err)
	}

	delivered := make(chan *wire.Event, 1)
	andyH.Subscribe("calendar.changed", "watch", func(ev *wire.Event) { delivered <- ev })

	philH.SubscribeRemote("calendar.changed", "andy", andyLn.Addr())
	philH.Raise(context.Background(), "calendar.changed", wire.Args{"slot": "mon-9"})

	select {
	case ev := <-delivered:
		if ev.Source != "phil" || ev.Args.String("slot") != "mon-9" {
			t.Fatalf("ev = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("remote event not delivered")
	}
	if subs := philH.RemoteSubscribers("calendar.changed"); len(subs) != 1 || subs[0] != "andy" {
		t.Fatalf("subs = %v", subs)
	}
	philH.UnsubscribeRemote("calendar.changed", "andy")
	if subs := philH.RemoteSubscribers("calendar.changed"); len(subs) != 0 {
		t.Fatalf("subs after unsubscribe = %v", subs)
	}
}

func TestRaiseSurvivesDownSubscriber(t *testing.T) {
	net := sim.New(sim.Config{})
	h := New("phil", net, nil)
	h.SubscribeRemote("e", "ghost", "nowhere")
	local := 0
	h.Subscribe("e", "s", func(*wire.Event) { local++ })
	h.Raise(context.Background(), "e", nil) // must not panic or error
	if local != 1 {
		t.Fatalf("local = %d", local)
	}
}

func TestEveryFiresOnFakeClock(t *testing.T) {
	net := sim.New(sim.Config{})
	fake := clock.NewFake(time.Unix(0, 0))
	h := New("phil", net, fake)
	var fired atomic.Int64
	cancel := h.Every(time.Minute, func(now time.Time) { fired.Add(1) })
	defer cancel()

	waitFor := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for fired.Load() < want {
			if time.Now().After(deadline) {
				t.Fatalf("fired = %d, want %d", fired.Load(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Wait until the schedule goroutine has registered its waiter.
	deadline := time.Now().Add(5 * time.Second)
	for fake.PendingWaiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("schedule never armed")
		}
		time.Sleep(time.Millisecond)
	}
	fake.Advance(time.Minute)
	waitFor(1)
	for fake.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	fake.Advance(time.Minute)
	waitFor(2)
	cancel()
	// After cancel, advancing must not fire again.
	time.Sleep(10 * time.Millisecond)
	fake.Advance(10 * time.Minute)
	time.Sleep(10 * time.Millisecond)
	if fired.Load() > 3 { // allow one in-flight tick
		t.Fatalf("fired after cancel: %d", fired.Load())
	}
}

func TestEveryPanicsOnBadInterval(t *testing.T) {
	net := sim.New(sim.Config{})
	h := New("phil", net, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	h.Every(0, func(time.Time) {})
}

func TestCloseStopsSchedules(t *testing.T) {
	net := sim.New(sim.Config{})
	fake := clock.NewFake(time.Unix(0, 0))
	h := New("phil", net, fake)
	var fired atomic.Int64
	h.Every(time.Minute, func(time.Time) { fired.Add(1) })
	h.Every(time.Second, func(time.Time) { fired.Add(1) })

	done := make(chan struct{})
	go func() { h.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
	// Every after Close is a no-op.
	cancel := h.Every(time.Second, func(time.Time) { fired.Add(1) })
	cancel()
	h.Close() // idempotent
}

func TestEventServiceObjectEndToEnd(t *testing.T) {
	// Full global-event path through the engine: andy subscribes to
	// phil's event via the events.phil service; phil raises; andy's
	// handler sees it.
	net := sim.New(sim.Config{})
	srv := directory.NewServer(directory.WithTTL(time.Hour))
	dln, err := net.Listen("dir", srv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	dir := directory.NewClient(net, dln.Addr())
	ctx := context.Background()

	philH := New("phil", net, nil)
	philL := listener.New("phil", nil)
	philL.Register(ServiceFor("phil"), philH.Object())
	philLn, err := net.Listen("node-phil", philL)
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.RegisterUser(ctx, "phil", philLn.Addr(), 0); err != nil {
		t.Fatal(err)
	}
	if err := philL.PublishGlobal(ctx, dir, ServiceFor("phil"), philLn.Addr()); err != nil {
		t.Fatal(err)
	}

	andyH := New("andy", net, nil)
	andyL := listener.New("andy", nil)
	andyL.SetEventSink(andyH.Dispatch)
	andyLn, err := net.Listen("node-andy", andyL)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var got []*wire.Event
	andyH.Subscribe("meeting.cancelled", "w", func(ev *wire.Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})

	e := engine.New(net, dir, "andy")
	if err := SubscribeTo(ctx, e, "phil", "meeting.cancelled", andyLn.Addr()); err != nil {
		t.Fatal(err)
	}
	philH.Raise(ctx, "meeting.cancelled", wire.Args{"meeting": "M1"})

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("event not delivered end to end")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0].Args.String("meeting") != "M1" {
		t.Fatalf("got = %+v", got[0])
	}

	// Unsubscribe stops delivery.
	if err := UnsubscribeFrom(ctx, e, "phil", "meeting.cancelled"); err != nil {
		t.Fatal(err)
	}
	if subs := philH.RemoteSubscribers("meeting.cancelled"); len(subs) != 0 {
		t.Fatalf("subs = %v", subs)
	}
}

func TestObjectValidatesArgs(t *testing.T) {
	net := sim.New(sim.Config{})
	h := New("phil", net, nil)
	obj := h.Object()
	l := listener.New("phil", nil)
	l.Register(ServiceFor("phil"), obj)
	resp := l.HandleRequest(context.Background(), &wire.Request{
		Service: ServiceFor("phil"), Method: "Subscribe", Args: wire.Args{},
	})
	if resp.OK || resp.Code != wire.CodeBadArgs {
		t.Fatalf("resp = %+v", resp)
	}
}
