// Package event implements SyDEventHandler (paper §3.1d): "local and
// global event registration, monitoring, and triggering".
//
// Local events are in-process callbacks. Global events work by
// registration: a remote node subscribes to an event name on this node
// (through the events.<user> service object); when the event is
// raised here, a one-way wire.Event is sent to every remote
// subscriber, whose own event handler dispatches it locally.
//
// The handler also owns the periodic schedules the paper assigns to it
// ("periodically, the local event handler triggers a method which
// checks for links whose expiration times have been surpassed", §4.2
// op 6).
package event

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/listener"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ServicePrefix prefixes the per-user event service name.
const ServicePrefix = "events."

// ServiceFor returns the event service name for a user.
func ServiceFor(user string) string { return ServicePrefix + user }

// Handler is a node's event handler. Safe for concurrent use.
type Handler struct {
	self string
	net  transport.Network
	clk  clock.Clock

	mu     sync.RWMutex
	local  map[string]map[string]func(*wire.Event) // event -> subID -> fn
	remote map[string]map[string]string            // event -> subscriber user -> addr
	stops  []func()                                // schedule cancel functions
	closed bool

	wg sync.WaitGroup
}

// New creates an event handler for user self on net.
func New(self string, net transport.Network, clk clock.Clock) *Handler {
	if clk == nil {
		clk = clock.System
	}
	return &Handler{
		self:   self,
		net:    net,
		clk:    clk,
		local:  make(map[string]map[string]func(*wire.Event)),
		remote: make(map[string]map[string]string),
	}
}

// Subscribe registers a local callback for event name under id
// (replacing any previous callback with the same id).
func (h *Handler) Subscribe(name, id string, fn func(*wire.Event)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.local[name] == nil {
		h.local[name] = make(map[string]func(*wire.Event))
	}
	h.local[name][id] = fn
}

// Unsubscribe removes a local callback.
func (h *Handler) Unsubscribe(name, id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.local[name], id)
}

// SubscribeRemote records that subscriber (at addr) wants event name
// from this node. Normally reached through the event service object.
func (h *Handler) SubscribeRemote(name, subscriber, addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.remote[name] == nil {
		h.remote[name] = make(map[string]string)
	}
	h.remote[name][subscriber] = addr
}

// UnsubscribeRemote removes a remote subscription.
func (h *Handler) UnsubscribeRemote(name, subscriber string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.remote[name], subscriber)
}

// RemoteSubscribers lists users subscribed to event name, sorted.
func (h *Handler) RemoteSubscribers(name string) []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.remote[name]))
	for u := range h.remote[name] {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Raise fires event name: local subscribers synchronously, remote
// subscribers via one-way sends (best effort; a down subscriber does
// not fail the raise).
func (h *Handler) Raise(ctx context.Context, name string, args wire.Args) {
	ctx, span := trace.Start(ctx, "event.raise")
	ev := &wire.Event{Name: name, Source: h.self, Args: args}
	h.Dispatch(ev)

	h.mu.RLock()
	targets := make(map[string]string, len(h.remote[name]))
	for u, addr := range h.remote[name] {
		targets[u] = addr
	}
	h.mu.RUnlock()
	if span != nil {
		span.Annotate(trace.String("event", name), trace.Int("subscribers", len(targets)))
		defer span.Finish()
	}
	for _, addr := range targets {
		_ = h.net.Send(ctx, addr, ev)
	}
}

// Dispatch delivers an event (inbound from the network, or locally
// raised) to local subscribers. Callbacks run synchronously in
// subscription-id order so tests and traces are deterministic.
func (h *Handler) Dispatch(ev *wire.Event) {
	h.mu.RLock()
	subs := h.local[ev.Name]
	ids := make([]string, 0, len(subs))
	for id := range subs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fns := make([]func(*wire.Event), 0, len(ids))
	for _, id := range ids {
		fns = append(fns, subs[id])
	}
	h.mu.RUnlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// Every runs fn every interval until the returned cancel function is
// called (or the handler is closed). The first run happens one full
// interval after Every returns.
func (h *Handler) Every(interval time.Duration, fn func(now time.Time)) (cancel func()) {
	if interval <= 0 {
		panic("event: Every needs a positive interval")
	}
	stop := make(chan struct{})
	var once sync.Once
	cancel = func() { once.Do(func() { close(stop) }) }
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		cancel()
		return cancel
	}
	h.stops = append(h.stops, cancel)
	h.mu.Unlock()
	h.wg.Add(1)
	// On an auto-advancing clock the schedule registers before its
	// goroutine launches — synchronously with the caller — so a paused
	// clock's gate counts it from the instant Every returns (and the
	// loop withdraws its pending waiter on exit so the gate is not
	// skewed by a stale deadline).
	ar, auto := h.clk.(clock.AutoRegistrar)
	if auto {
		ar.RegisterGoroutine()
	}
	go func() {
		defer h.wg.Done()
		for {
			ch := h.clk.After(interval)
			select {
			case <-stop:
				if auto {
					ar.UnregisterGoroutine(ch)
				}
				return
			case now := <-ch:
				select {
				case <-stop:
					if auto {
						ar.UnregisterGoroutine()
					}
					return
				default:
				}
				fn(now)
			}
		}
	}()
	return cancel
}

// Object returns the listener object exposing remote subscription
// management for this handler (register it as events.<user>).
func (h *Handler) Object() *listener.Object {
	obj := listener.NewObject()
	obj.Handle("Subscribe", func(ctx context.Context, call *listener.Call) (any, error) {
		name := call.Args.String("event")
		addr := call.Args.String("addr")
		if name == "" || addr == "" {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "event and addr are required"}
		}
		h.SubscribeRemote(name, call.Caller, addr)
		return true, nil
	})
	obj.Handle("Unsubscribe", func(ctx context.Context, call *listener.Call) (any, error) {
		h.UnsubscribeRemote(call.Args.String("event"), call.Caller)
		return true, nil
	})
	return obj
}

// SubscribeTo registers this node for event name raised by sourceUser,
// asking that deliveries be sent to myAddr.
func SubscribeTo(ctx context.Context, e *engine.Engine, sourceUser, name, myAddr string) error {
	err := e.Invoke(ctx, ServiceFor(sourceUser), "Subscribe", wire.Args{
		"event": name, "addr": myAddr,
	}, nil)
	if err != nil {
		return fmt.Errorf("event: subscribe to %s@%s: %w", name, sourceUser, err)
	}
	return nil
}

// UnsubscribeFrom reverses SubscribeTo.
func UnsubscribeFrom(ctx context.Context, e *engine.Engine, sourceUser, name string) error {
	return e.Invoke(ctx, ServiceFor(sourceUser), "Unsubscribe", wire.Args{"event": name}, nil)
}

// Close cancels all schedules started with Every and waits for their
// goroutines to exit.
func (h *Handler) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	stops := h.stops
	h.stops = nil
	h.mu.Unlock()
	for _, cancel := range stops {
		cancel()
	}
	h.wg.Wait()
}
