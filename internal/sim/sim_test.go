package sim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/transport"
	"repro/internal/wire"
)

type okHandler struct {
	events atomic.Int64
	calls  atomic.Int64
}

func (h *okHandler) HandleRequest(ctx context.Context, req *transport.Request) *transport.Response {
	h.calls.Add(1)
	return &transport.Response{ID: req.ID, OK: true}
}

func (h *okHandler) HandleEvent(ev *transport.Event) { h.events.Add(1) }

func TestListenAssignsUniqueAddrs(t *testing.T) {
	n := New(Config{})
	a, err := n.Listen("", &okHandler{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Listen(":0", &okHandler{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr() == b.Addr() {
		t.Fatalf("duplicate auto addresses %q", a.Addr())
	}
}

func TestListenDuplicateAddrFails(t *testing.T) {
	n := New(Config{})
	if _, err := n.Listen("phil", &okHandler{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("phil", &okHandler{}); err == nil {
		t.Fatal("duplicate bind succeeded")
	}
}

func TestCallDelivers(t *testing.T) {
	n := New(Config{})
	h := &okHandler{}
	if _, err := n.Listen("phil", h); err != nil {
		t.Fatal(err)
	}
	resp, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || h.calls.Load() != 1 {
		t.Fatalf("resp=%+v calls=%d", resp, h.calls.Load())
	}
}

func TestCallUnknownEndpoint(t *testing.T) {
	n := New(Config{})
	_, err := n.Call(context.Background(), "ghost", &transport.Request{Service: "s", Method: "m"})
	if wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("err = %v", err)
	}
}

func TestSetDownBlocksAndRestores(t *testing.T) {
	n := New(Config{})
	h := &okHandler{}
	if _, err := n.Listen("phil", h); err != nil {
		t.Fatal(err)
	}
	n.SetDown("phil", true)
	if _, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m"}); wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("down device reachable: %v", err)
	}
	n.SetDown("phil", false)
	if _, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m"}); err != nil {
		t.Fatalf("restored device unreachable: %v", err)
	}
}

func TestPartitionBlocksPairOnly(t *testing.T) {
	n := New(Config{})
	if _, err := n.Listen("phil", &okHandler{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("andy", &okHandler{}); err != nil {
		t.Fatal(err)
	}
	n.Partition("phil", "andy")

	// andy -> phil blocked (both orientations of the pair).
	_, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m", Caller: "andy"})
	if wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("partitioned call went through: %v", err)
	}
	_, err = n.Call(context.Background(), "andy", &transport.Request{Service: "s", Method: "m", Caller: "phil"})
	if wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("partitioned call (reverse) went through: %v", err)
	}
	// suzy -> phil unaffected.
	if _, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m", Caller: "suzy"}); err != nil {
		t.Fatalf("unrelated caller blocked: %v", err)
	}
	n.Heal("andy", "phil") // order-insensitive
	if _, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m", Caller: "andy"}); err != nil {
		t.Fatalf("healed partition still blocks: %v", err)
	}
}

func TestPartitionOneWayBlocksSingleDirection(t *testing.T) {
	n := New(Config{})
	if _, err := n.Listen("phil", &okHandler{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("andy", &okHandler{}); err != nil {
		t.Fatal(err)
	}
	n.PartitionOneWay("andy", "phil")

	// andy -> phil blocked.
	_, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m", Caller: "andy"})
	if wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("one-way-partitioned call went through: %v", err)
	}
	// phil -> andy still works (the asymmetric half).
	if _, err := n.Call(context.Background(), "andy", &transport.Request{Service: "s", Method: "m", Caller: "phil"}); err != nil {
		t.Fatalf("reverse direction blocked: %v", err)
	}
	// Heal clears one-way state regardless of argument order.
	n.Heal("phil", "andy")
	if _, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m", Caller: "andy"}); err != nil {
		t.Fatalf("healed one-way partition still blocks: %v", err)
	}
}

func TestFlapPartition(t *testing.T) {
	n := New(Config{})
	if _, err := n.Listen("phil", &okHandler{}); err != nil {
		t.Fatal(err)
	}
	call := func() error {
		_, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m", Caller: "andy"})
		return err
	}
	stop := n.FlapPartition("andy", "phil", 5*time.Millisecond)
	// Starts partitioned.
	if err := call(); wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("flap did not start partitioned: %v", err)
	}
	// Over a few periods both states must be observed.
	var sawUp, sawDown bool
	deadline := time.Now().Add(2 * time.Second)
	for (!sawUp || !sawDown) && time.Now().Before(deadline) {
		if call() == nil {
			sawUp = true
		} else {
			sawDown = true
		}
		time.Sleep(time.Millisecond)
	}
	if !sawUp || !sawDown {
		t.Fatalf("flapping not observed: up=%v down=%v", sawUp, sawDown)
	}
	stop()
	stop() // idempotent
	if err := call(); err != nil {
		t.Fatalf("stop did not heal the pair: %v", err)
	}
}

func TestLossIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) int64 {
		n := New(Config{LossProb: 0.5, Seed: seed})
		if _, err := n.Listen("phil", &okHandler{}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			_, _ = n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m"})
		}
		return n.Stats().Dropped
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a == 0 || a == 400 {
		t.Fatalf("LossProb=0.5 dropped %d of 200 calls", a)
	}
}

func TestLatencyApplied(t *testing.T) {
	n := New(Config{BaseLatency: 20 * time.Millisecond})
	if _, err := n.Listen("phil", &okHandler{}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m"}); err != nil {
		t.Fatal(err)
	}
	// Request + response leg = 2 * BaseLatency.
	if got := time.Since(start); got < 40*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 40ms", got)
	}
}

func TestLatencyRespectsContext(t *testing.T) {
	n := New(Config{BaseLatency: 10 * time.Second})
	if _, err := n.Listen("phil", &okHandler{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := n.Call(ctx, "phil", &transport.Request{Service: "s", Method: "m"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestSendEventDelivered(t *testing.T) {
	n := New(Config{})
	h := &okHandler{}
	if _, err := n.Listen("phil", h); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(context.Background(), "phil", &transport.Event{Name: "tick"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.events.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("event not delivered")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStatsCounting(t *testing.T) {
	n := New(Config{CountBytes: true})
	if _, err := n.Listen("phil", &okHandler{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Send(context.Background(), "phil", &transport.Event{Name: "e"}); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Requests != 3 || st.Responses != 3 || st.Events != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes == 0 {
		t.Fatal("CountBytes produced no byte accounting")
	}
	n.ResetStats()
	if got := n.Stats(); got != (Stats{}) {
		t.Fatalf("after reset: %+v", got)
	}
}

func TestEndpointCloseUnbinds(t *testing.T) {
	n := New(Config{})
	ln, err := n.Listen("phil", &okHandler{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m"}); wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("closed endpoint still reachable: %v", err)
	}
	// Address can be rebound.
	if _, err := n.Listen("phil", &okHandler{}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimCall(b *testing.B) {
	n := New(Config{})
	h := &okHandler{}
	if _, err := n.Listen("phil", h); err != nil {
		b.Fatal(err)
	}
	req := &transport.Request{Service: "s", Method: "m"}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.Call(ctx, "phil", req); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJitterBounded(t *testing.T) {
	n := New(Config{BaseLatency: time.Millisecond, Jitter: 2 * time.Millisecond, Seed: 5})
	if _, err := n.Listen("phil", &okHandler{}); err != nil {
		t.Fatal(err)
	}
	// Round trip = 2 legs; each leg in [1ms, 3ms) -> total in [2ms, 6ms).
	for i := 0; i < 10; i++ {
		start := time.Now()
		if _, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m"}); err != nil {
			t.Fatal(err)
		}
		got := time.Since(start)
		if got < 2*time.Millisecond {
			t.Fatalf("round trip %v under the base latency", got)
		}
		if got > 60*time.Millisecond { // generous scheduling slack
			t.Fatalf("round trip %v far above base+jitter", got)
		}
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	// Same seed -> same jitter draws -> byte-identical drop decisions
	// under combined loss+jitter.
	run := func() (int64, int64) {
		n := New(Config{Jitter: time.Microsecond, LossProb: 0.3, Seed: 11})
		if _, err := n.Listen("phil", &okHandler{}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			_, _ = n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m"})
		}
		st := n.Stats()
		return st.Requests, st.Dropped
	}
	r1, d1 := run()
	r2, d2 := run()
	if r1 != r2 || d1 != d2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", r1, d1, r2, d2)
	}
}

func TestRuntimeMutableFaults(t *testing.T) {
	n := New(Config{Seed: 7})
	if _, err := n.Listen("phil", &okHandler{}); err != nil {
		t.Fatal(err)
	}
	call := func() error {
		_, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m"})
		return err
	}
	// Loss-free at construction: every call lands.
	for i := 0; i < 50; i++ {
		if err := call(); err != nil {
			t.Fatalf("loss-free call %d failed: %v", i, err)
		}
	}
	// Flip loss on mid-run.
	n.SetLoss(1)
	if err := call(); wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("full loss delivered: %v", err)
	}
	// And back off: the same live network heals.
	n.SetLoss(0)
	if err := call(); err != nil {
		t.Fatalf("healed call failed: %v", err)
	}
	// Latency is mutable the same way.
	n.SetLatency(15*time.Millisecond, 0)
	start := time.Now()
	if err := call(); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 30*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 30ms", got)
	}
	n.SetLatency(0, 0)
	start = time.Now()
	if err := call(); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got > 10*time.Millisecond {
		t.Fatalf("latency not removed: round trip %v", got)
	}
}

func TestIsolateCutsBothDirections(t *testing.T) {
	n := New(Config{})
	if _, err := n.Listen("phil", &okHandler{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("andy", &okHandler{}); err != nil {
		t.Fatal(err)
	}
	n.Isolate("phil", true)

	// Inbound to the isolated device is blocked, even for
	// infrastructure calls with no caller.
	_, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m", Caller: "andy"})
	if wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("call into isolated device went through: %v", err)
	}
	_, err = n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m"})
	if wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("callerless call into isolated device went through: %v", err)
	}
	// Outbound from the isolated device is blocked too — unlike SetDown.
	_, err = n.Call(context.Background(), "andy", &transport.Request{Service: "s", Method: "m", Caller: "phil"})
	if wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("call out of isolated device went through: %v", err)
	}
	// Unrelated traffic is unaffected.
	if _, err := n.Call(context.Background(), "andy", &transport.Request{Service: "s", Method: "m", Caller: "suzy"}); err != nil {
		t.Fatalf("unrelated call blocked: %v", err)
	}
	n.Isolate("phil", false)
	if _, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m", Caller: "andy"}); err != nil {
		t.Fatalf("reconnected device unreachable: %v", err)
	}
}

// TestFlapPartitionOnFakeClock: flap periods are timed through the
// injected clock, so advancing a fake clock toggles the partition
// without any wall-clock waiting.
func TestFlapPartitionOnFakeClock(t *testing.T) {
	clk := clock.NewFake(time.Date(2003, 4, 21, 8, 0, 0, 0, time.UTC))
	n := New(Config{Clock: clk})
	if _, err := n.Listen("phil", &okHandler{}); err != nil {
		t.Fatal(err)
	}
	call := func() error {
		_, err := n.Call(context.Background(), "phil", &transport.Request{Service: "s", Method: "m", Caller: "andy"})
		return err
	}
	stop := n.FlapPartition("andy", "phil", time.Minute)
	defer stop()
	if err := call(); wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("flap did not start partitioned: %v", err)
	}
	// One period heals, the next cuts again. The flapper re-arms its
	// wait asynchronously, so poll for each state change.
	await := func(wantUp bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			up := call() == nil
			if up == wantUp {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("flap never reached up=%v", wantUp)
			}
			clk.Advance(time.Minute)
			time.Sleep(time.Millisecond)
		}
	}
	await(true)
	await(false)
}
