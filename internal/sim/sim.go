// Package sim provides an in-memory transport.Network with fault and
// latency injection.
//
// The paper ran its prototype on iPAQ PDAs over a wireless LAN, an
// environment with "low communication bandwidth and weak connectivity"
// (§7). We have no PDAs, so this package simulates that substrate: it
// implements the same Network interface as the TCP transport but routes
// frames in memory, adding configurable latency/jitter, message loss,
// link partitions, and device up/down state, while counting every
// message for the experiment harness (DESIGN.md T1/T2).
package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Config controls fault and latency injection. The zero value is a
// perfect, instantaneous network. Latency and loss are the *initial*
// values; a live Net can be re-tuned mid-run with SetLoss and
// SetLatency (chaos schedules flip faults on and off while traffic is
// in flight).
type Config struct {
	// BaseLatency is added to every delivery.
	BaseLatency time.Duration
	// Jitter adds a uniform random extra in [0, Jitter).
	Jitter time.Duration
	// LossProb drops a request or event with this probability
	// (a dropped request surfaces as CodeUnavailable).
	LossProb float64
	// Seed seeds the private RNG so runs are reproducible.
	Seed int64
	// CountBytes, when true, JSON-encodes each message to account
	// payload bytes in Stats (costs CPU; off by default).
	CountBytes bool
	// EncodeFrames, when true, routes every request, response, and
	// event through a full wire-frame encode→decode round trip with
	// FrameCodec before delivery. The in-memory transport normally
	// hands the receiver the sender's pointer; with this on the
	// receiver sees exactly what a socket peer would see — JSON's
	// number widening, v3's tagged scalars — so chaos and idempotency
	// suites can prove protocol semantics under each wire encoding.
	EncodeFrames bool
	// FrameCodec selects the encoding EncodeFrames uses
	// (wire.CodecJSON by default).
	FrameCodec wire.Codec
	// Clock times latency sleeps and FlapPartition periods; nil = system
	// clock. The scale harness injects its auto-advancing fake clock so
	// simulated network delays compress along with every other timer.
	Clock clock.Clock
}

// Stats aggregates traffic counters. All fields are totals since the
// network was created (or since ResetStats).
type Stats struct {
	Requests  int64 // requests delivered
	Responses int64 // responses delivered
	Events    int64 // events delivered
	Dropped   int64 // messages lost to LossProb, partitions, or down devices
	Bytes     int64 // payload bytes (only when Config.CountBytes)
}

// Net is an in-memory Network. Create with New; safe for concurrent use.
type Net struct {
	cfg Config
	clk clock.Clock

	mu        sync.RWMutex
	endpoints map[string]*endpoint
	down      map[string]bool
	parts     map[[2]string]bool // unordered pair, stored with a<=b
	oneway    map[[2]string]bool // ordered [src, dst]: src cannot reach dst
	isolated  map[string]bool    // addr cut off in both directions

	// Mutable fault config; rngMu guards these together with rng so a
	// mid-test SetLoss/SetLatency is seen by in-flight deliveries.
	rngMu       sync.Mutex
	rng         *rand.Rand
	lossProb    float64
	baseLatency time.Duration
	jitter      time.Duration

	requests  atomic.Int64
	responses atomic.Int64
	events    atomic.Int64
	dropped   atomic.Int64
	bytes     atomic.Int64

	nextAuto atomic.Int64
}

type endpoint struct {
	addr    string
	handler transport.Handler
	net     *Net
	closed  atomic.Bool
}

// New creates a simulated network with the given config.
func New(cfg Config) *Net {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	return &Net{
		cfg:         cfg,
		clk:         clk,
		endpoints:   make(map[string]*endpoint),
		down:        make(map[string]bool),
		parts:       make(map[[2]string]bool),
		oneway:      make(map[[2]string]bool),
		isolated:    make(map[string]bool),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		lossProb:    cfg.LossProb,
		baseLatency: cfg.BaseLatency,
		jitter:      cfg.Jitter,
	}
}

// SetLoss changes the message-loss probability on the live network.
// Chaos tests flip this mid-run instead of rebuilding the world.
func (n *Net) SetLoss(p float64) {
	n.rngMu.Lock()
	n.lossProb = p
	n.rngMu.Unlock()
}

// SetLatency changes base latency and jitter on the live network.
func (n *Net) SetLatency(base, jitter time.Duration) {
	n.rngMu.Lock()
	n.baseLatency = base
	n.jitter = jitter
	n.rngMu.Unlock()
}

// Listen implements transport.Network. An empty addr or an addr ending
// in ":0" is assigned a unique simulated address.
func (n *Net) Listen(addr string, h transport.Handler) (transport.Listener, error) {
	if addr == "" || len(addr) >= 2 && addr[len(addr)-2:] == ":0" {
		addr = fmt.Sprintf("sim-%d", n.nextAuto.Add(1))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.endpoints[addr]; exists {
		return nil, fmt.Errorf("sim: address %s already bound", addr)
	}
	ep := &endpoint{addr: addr, handler: h, net: n}
	n.endpoints[addr] = ep
	return ep, nil
}

func (e *endpoint) Addr() string { return e.addr }

func (e *endpoint) Close() error {
	if e.closed.CompareAndSwap(false, true) {
		e.net.mu.Lock()
		if e.net.endpoints[e.addr] == e {
			delete(e.net.endpoints, e.addr)
		}
		e.net.mu.Unlock()
	}
	return nil
}

// pairKey normalizes an unordered address pair.
func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// SetDown marks a device's network presence up or down. Calls to a down
// device fail with CodeUnavailable — this is how mobility experiments
// disconnect an iPAQ.
func (n *Net) SetDown(addr string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if down {
		n.down[addr] = true
	} else {
		delete(n.down, addr)
	}
}

// Isolate cuts addr off from the whole network in both directions (on
// true) or reconnects it (on false). SetDown only blocks inbound
// traffic; Isolate models a commuter device out of radio range — it can
// neither be called nor call anyone, including the directory.
func (n *Net) Isolate(addr string, on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if on {
		n.isolated[addr] = true
	} else {
		delete(n.isolated, addr)
	}
}

// Partition blocks traffic between a and b in both directions.
func (n *Net) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts[pairKey(a, b)] = true
}

// PartitionOneWay blocks traffic from src to dst only; dst can still
// reach src. Asymmetric partitions model the weak-connectivity story of
// §7 — a PDA that can hear the fixed network but not be heard.
func (n *Net) PartitionOneWay(src, dst string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.oneway[[2]string{src, dst}] = true
}

// Heal removes any partition between a and b: the symmetric pair and
// both one-way directions.
func (n *Net) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.parts, pairKey(a, b))
	delete(n.oneway, [2]string{a, b})
	delete(n.oneway, [2]string{b, a})
}

// FlapPartition alternately partitions and heals the a↔b pair every
// period, starting partitioned immediately. It returns a stop function
// (idempotent) that halts the flapping and heals the pair. Chaos tests
// script an intermittently-connected device with this.
func (n *Net) FlapPartition(a, b string, period time.Duration) (stop func()) {
	done := make(chan struct{})
	n.Partition(a, b)
	// Flap periods are timed through the network's clock; on an
	// auto-advancing clock the flapper registers — before its goroutine
	// launches, so a paused clock's gate counts it immediately — and
	// virtual time single-steps through its waits.
	ar, auto := n.clk.(clock.AutoRegistrar)
	if auto {
		ar.RegisterGoroutine()
	}
	go func() {
		cut := true
		for {
			ch := n.clk.After(period)
			select {
			case <-done:
				if auto {
					ar.UnregisterGoroutine(ch)
				}
				return
			case <-ch:
				cut = !cut
				if cut {
					n.Partition(a, b)
				} else {
					n.Heal(a, b)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			n.Heal(a, b)
		})
	}
}

// reachable reports whether dst is currently deliverable from src and
// returns the handler if so.
func (n *Net) reachable(src, dst string) (*endpoint, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.down[dst] {
		return nil, unavailable("device %s is down", dst)
	}
	if n.isolated[dst] {
		return nil, unavailable("device %s is isolated", dst)
	}
	if src != "" && n.isolated[src] {
		return nil, unavailable("device %s is isolated", src)
	}
	if n.parts[pairKey(src, dst)] {
		return nil, unavailable("partition between %s and %s", src, dst)
	}
	if n.oneway[[2]string{src, dst}] {
		return nil, unavailable("one-way partition %s -> %s", src, dst)
	}
	ep, ok := n.endpoints[dst]
	if !ok {
		return nil, unavailable("no endpoint at %s", dst)
	}
	return ep, nil
}

func unavailable(format string, args ...any) error {
	return &wire.RemoteError{Code: wire.CodeUnavailable, Msg: fmt.Sprintf(format, args...)}
}

// lose decides whether to drop a message and draws latency.
func (n *Net) lose() bool {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	if n.lossProb <= 0 {
		return false
	}
	return n.rng.Float64() < n.lossProb
}

func (n *Net) latency() time.Duration {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	d := n.baseLatency
	if n.jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.jitter)))
	}
	return d
}

func (n *Net) account(v any) {
	if !n.cfg.CountBytes {
		return
	}
	if b, err := json.Marshal(v); err == nil {
		n.bytes.Add(int64(len(b)))
	}
}

func (n *Net) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	select {
	case <-n.clk.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Call implements transport.Network. The caller's "source address" for
// partition purposes is taken from req.Caller when it matches a bound
// endpoint; infrastructure calls without a caller bypass partitions.
func (n *Net) Call(ctx context.Context, addr string, req *transport.Request) (*transport.Response, error) {
	src := ""
	if req != nil {
		src = req.Caller
	}
	ep, err := n.reachable(src, addr)
	if err != nil {
		n.dropped.Add(1)
		return nil, err
	}
	if n.lose() {
		n.dropped.Add(1)
		return nil, unavailable("request to %s lost", addr)
	}
	if err := n.sleep(ctx, n.latency()); err != nil {
		return nil, err
	}
	n.requests.Add(1)
	n.account(req)

	if n.cfg.EncodeFrames {
		env, err := n.roundTrip(&wire.Envelope{Kind: wire.KindRequest, Request: req})
		if err != nil {
			return nil, err
		}
		req = env.Request
	}
	resp := ep.handler.HandleRequest(ctx, req)
	if resp == nil {
		resp = transport.ErrorResponse(req, wire.CodeInternal, "handler returned no response")
	}
	if n.cfg.EncodeFrames {
		env, err := n.roundTrip(&wire.Envelope{Kind: wire.KindResponse, Response: resp})
		if err != nil {
			return nil, err
		}
		resp = env.Response
	}

	if n.lose() {
		n.dropped.Add(1)
		return nil, unavailable("response from %s lost", addr)
	}
	if err := n.sleep(ctx, n.latency()); err != nil {
		return nil, err
	}
	n.responses.Add(1)
	n.account(resp)
	return resp, nil
}

// roundTrip encodes env with the configured frame codec and decodes it
// back, yielding the envelope a real socket peer would have received.
func (n *Net) roundTrip(env *wire.Envelope) (*wire.Envelope, error) {
	f, err := wire.EncodeFrameCodec(env, n.cfg.FrameCodec)
	if err != nil {
		return nil, &wire.RemoteError{Code: wire.CodeInternal, Msg: fmt.Sprintf("sim: encode: %v", err)}
	}
	out, err := wire.NewFrameReader(bytes.NewReader(f.Bytes())).Read()
	f.Release()
	if err != nil {
		return nil, &wire.RemoteError{Code: wire.CodeInternal, Msg: fmt.Sprintf("sim: decode: %v", err)}
	}
	return out, nil
}

// Send implements transport.Network.
func (n *Net) Send(ctx context.Context, addr string, ev *transport.Event) error {
	src := ""
	if ev != nil {
		src = ev.Source
	}
	ep, err := n.reachable(src, addr)
	if err != nil {
		n.dropped.Add(1)
		return err
	}
	if n.lose() {
		n.dropped.Add(1)
		return nil // events are fire-and-forget; loss is silent
	}
	if err := n.sleep(ctx, n.latency()); err != nil {
		return err
	}
	n.events.Add(1)
	n.account(ev)
	if n.cfg.EncodeFrames {
		env, err := n.roundTrip(&wire.Envelope{Kind: wire.KindEvent, Event: ev})
		if err != nil {
			return err
		}
		ev = env.Event
	}
	go ep.handler.HandleEvent(ev)
	return nil
}

// Stats returns a snapshot of traffic counters.
func (n *Net) Stats() Stats {
	return Stats{
		Requests:  n.requests.Load(),
		Responses: n.responses.Load(),
		Events:    n.events.Load(),
		Dropped:   n.dropped.Load(),
		Bytes:     n.bytes.Load(),
	}
}

// ResetStats zeroes the traffic counters (partitions and down state are
// unaffected).
func (n *Net) ResetStats() {
	n.requests.Store(0)
	n.responses.Store(0)
	n.events.Store(0)
	n.dropped.Store(0)
	n.bytes.Store(0)
}
