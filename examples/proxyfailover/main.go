// Proxy failover — the paper's §5.2 mobility story: a device pushes
// its calendar to its assigned proxy and disconnects; meetings keep
// being scheduled against the proxy ("the proxy and the SyD object act
// as a single entity for an outsider"); on return the device takes the
// state back, including everything that happened while it was away.
//
//	go run ./examples/proxyfailover
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/calendar"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/notify"
	"repro/internal/proxy"
	"repro/internal/sim"
)

func main() {
	ctx := context.Background()
	net := sim.New(sim.Config{})
	dirSrv := directory.NewServer(directory.WithTTL(time.Hour))
	if _, err := net.Listen("dir", dirSrv.Handler()); err != nil {
		log.Fatal(err)
	}

	// A calendar-aware proxy host registers before the users so the
	// directory assigns it to them.
	if _, err := proxy.StartHost(ctx, proxy.HostConfig{
		ID: "p1", Net: net, DirAddr: "dir",
		Adopter: calendar.NewProxyAdopter(net, "dir", notify.Discard{}),
	}); err != nil {
		log.Fatal(err)
	}

	nodes := map[string]*core.Node{}
	cals := map[string]*calendar.Calendar{}
	for _, user := range []string{"phil", "andy"} {
		node, err := core.Start(ctx, core.Config{User: user, Net: net, DirAddr: "dir"})
		if err != nil {
			log.Fatal(err)
		}
		c, err := calendar.New(ctx, node)
		if err != nil {
			log.Fatal(err)
		}
		nodes[user], cals[user] = node, c
	}

	// Andy blocks Tuesday 9:00 and then walks out of WLAN range.
	busy := calendar.Slot{Day: "2003-04-22", Hour: 9}
	if err := cals["andy"].MarkBusy(busy, "flight", 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("andy pushes his calendar to the proxy and disconnects")
	if err := cals["andy"].GoOffline(ctx, net, nodes["andy"].Dir); err != nil {
		log.Fatal(err)
	}
	net.SetDown(nodes["andy"].Addr(), true)

	// Phil schedules with Andy anyway — the proxy answers, honouring
	// Andy's busy slot.
	m, err := cals["phil"].SetupMeeting(ctx, calendar.Request{
		Title: "sync", FromDay: "2003-04-22", ToDay: "2003-04-22", Must: []string{"andy"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meeting scheduled while andy is away: %s at %s (%s)\n", m.ID, m.Slot, m.Status)
	if m.Slot == busy {
		log.Fatal("the proxy ignored andy's busy slot")
	}

	// Andy comes back and pulls the proxied state.
	fmt.Println("andy reconnects and takes over from the proxy")
	net.SetDown(nodes["andy"].Addr(), false)
	if err := cals["andy"].ComeBack(ctx, net, nodes["andy"].Dir); err != nil {
		log.Fatal(err)
	}
	info := cals["andy"].Slot(m.Slot)
	fmt.Printf("andy's device now shows %s reserved for %s\n", m.Slot, info.Meeting)
	if info.Meeting != m.ID {
		log.Fatal("proxy-era reservation lost on handback")
	}
	if got := cals["andy"].Slot(busy).Meeting; got != "personal:flight" {
		log.Fatalf("original busy slot lost: %q", got)
	}
	fmt.Println("ok: no caller ever noticed the disconnect")
}
