// Quorum scheduling — the paper's §5 departmental example: "a quorum
// of 50% among the faculty of Biology and at least two faculties from
// Physics and, in addition, B and C are must attendees", realized with
// negotiation-or (k-of-n) links.
//
//	go run ./examples/quorum
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/calendar"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/sim"
)

func main() {
	ctx := context.Background()
	net := sim.New(sim.Config{})
	clk := clock.NewFake(time.Date(2003, 4, 21, 8, 0, 0, 0, time.UTC))
	dirSrv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(time.Hour))
	if _, err := net.Listen("dir", dirSrv.Handler()); err != nil {
		log.Fatal(err)
	}

	biology := []string{"bio1", "bio2", "bio3", "bio4"}
	physics := []string{"phy1", "phy2", "phy3"}
	users := append([]string{"a", "b", "c"}, append(biology, physics...)...)
	cals := map[string]*calendar.Calendar{}
	for _, user := range users {
		node, err := core.Start(ctx, core.Config{User: user, Net: net, DirAddr: "dir", Clock: clk})
		if err != nil {
			log.Fatal(err)
		}
		c, err := calendar.New(ctx, node)
		if err != nil {
			log.Fatal(err)
		}
		cals[user] = c
	}

	// Two biologists have lab duty at 13:00.
	slot := calendar.Slot{Day: "2003-04-22", Hour: 13}
	for _, u := range biology[:2] {
		if err := cals[u].MarkBusy(slot, "lab", 0); err != nil {
			log.Fatal(err)
		}
	}

	m, err := cals["a"].SetupMeeting(ctx, calendar.Request{
		Title: "faculty meeting",
		Day:   slot.Day, Hour: slot.Hour, PinSlot: true,
		Must: []string{"b", "c"},
		OrGroups: []calendar.OrGroup{
			{Name: "biology (50%)", Members: biology, K: len(biology) / 2},
			{Name: "physics (>=2)", Members: physics, K: 2},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meeting %s: %s at %s\n", m.ID, m.Status, m.Slot)
	fmt.Printf("reserved: %v\n", m.Reserved)
	var bio, phy []string
	for _, u := range m.Reserved {
		if strings.HasPrefix(u, "bio") {
			bio = append(bio, u)
		}
		if strings.HasPrefix(u, "phy") {
			phy = append(phy, u)
		}
	}
	fmt.Printf("biology quorum: %d/%d needed %d -> %v\n", len(bio), len(biology), len(biology)/2, bio)
	fmt.Printf("physics quorum: %d/%d needed 2 -> %v\n", len(phy), len(physics), phy)

	// Non-reserved faculty hold tentative back links: they can join
	// later if they free up (§5).
	for _, u := range append(biology, physics...) {
		if l, ok := cals[u].Links().GetLink(m.LinkID); ok {
			fmt.Printf("  %s link: %s/%s\n", u, l.Type, l.Subtype)
		}
	}
}
