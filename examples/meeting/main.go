// Meeting lifecycle walkthrough — the paper's §5 scenario end to end:
//
//  1. A sets up a meeting with B, C, D; C is busy, so the meeting is
//     tentative with a tentative back link queued at C.
//
//  2. C's conflict clears -> the link fires -> the meeting confirms.
//
//  3. D tries to change unilaterally -> vetoed by the back link.
//
//  4. A higher-priority meeting bumps B -> the meeting goes tentative.
//
//  5. The high-priority meeting is cancelled -> automatic rescheduling.
//
//  6. A cancels -> the cascade releases every slot.
//
//     go run ./examples/meeting
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/calendar"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/notify"
	"repro/internal/sim"
)

func main() {
	ctx := context.Background()
	net := sim.New(sim.Config{})
	clk := clock.NewFake(time.Date(2003, 4, 21, 8, 0, 0, 0, time.UTC))
	dirSrv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(time.Hour))
	if _, err := net.Listen("dir", dirSrv.Handler()); err != nil {
		log.Fatal(err)
	}
	mail := notify.NewMailbox()
	cals := map[string]*calendar.Calendar{}
	for _, user := range []string{"a", "b", "c", "d", "boss"} {
		node, err := core.Start(ctx, core.Config{User: user, Net: net, DirAddr: "dir", Clock: clk})
		if err != nil {
			log.Fatal(err)
		}
		c, err := calendar.New(ctx, node, calendar.WithNotifier(mail))
		if err != nil {
			log.Fatal(err)
		}
		cals[user] = c
	}

	slot := calendar.Slot{Day: "2003-04-22", Hour: 14}
	step := func(n int, what string) { fmt.Printf("\n[%d] %s\n", n, what) }
	show := func(c *calendar.Calendar, id string) {
		m, _ := c.Meeting(id)
		fmt.Printf("    meeting %s: %s, reserved=%v missing=%v\n", m.ID, m.Status, m.Reserved, m.Missing)
	}

	step(1, "C is busy; A sets up a meeting with B, C, D at "+slot.String())
	if err := cals["c"].MarkBusy(slot, "lecture", 0); err != nil {
		log.Fatal(err)
	}
	m, err := cals["a"].SetupMeeting(ctx, calendar.Request{
		Title: "project sync", Day: slot.Day, Hour: slot.Hour, PinSlot: true,
		Must: []string{"b", "c", "d"},
	})
	if err != nil {
		log.Fatal(err)
	}
	show(cals["a"], m.ID)

	step(2, "C's lecture is cancelled -> tentative link fires -> auto-confirm")
	if err := cals["c"].ReleaseSlot(ctx, slot); err != nil {
		log.Fatal(err)
	}
	show(cals["a"], m.ID)

	step(3, "D attempts a unilateral change -> back link vetoes")
	if _, err := cals["d"].Links().TriggerEntity(ctx, slot.Entity(), "change", nil); err != nil {
		fmt.Printf("    vetoed: %v\n", err)
	} else {
		log.Fatal("expected a veto")
	}

	step(4, "boss bumps B with a priority-9 meeting on the same slot")
	high, err := cals["boss"].SetupMeeting(ctx, calendar.Request{
		Title: "board call", Day: slot.Day, Hour: slot.Hour, PinSlot: true,
		Must: []string{"b"}, Priority: 9, AllowBump: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    board call: %s\n", high.Status)
	show(cals["a"], m.ID)

	step(5, "the board call is cancelled -> bumped meeting auto-reschedules")
	if err := cals["boss"].CancelMeeting(ctx, high.ID); err != nil {
		log.Fatal(err)
	}
	show(cals["a"], m.ID)

	step(6, "A cancels -> §4.4 cascade releases every slot")
	if err := cals["a"].CancelMeeting(ctx, m.ID); err != nil {
		log.Fatal(err)
	}
	for _, u := range []string{"a", "b", "c", "d"} {
		fmt.Printf("    %s slot now: %q\n", u, cals[u].Slot(slot).Meeting)
	}
	fmt.Printf("\nnotifications delivered: %d\n", mail.Total())
}
