// Quickstart: boot a complete SyD deployment in-process (directory +
// three calendar devices on the simulated network), schedule a meeting
// through coordination links, and print the result — including the
// per-method RPC metrics the interceptor pipeline collected along the
// way.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/calendar"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/metrics"
	"repro/internal/notify"
	"repro/internal/sim"
)

func main() {
	ctx := context.Background()

	// 1. A simulated network and the SyDDirectory name server.
	net := sim.New(sim.Config{})
	clk := clock.NewFake(time.Date(2003, 4, 21, 8, 0, 0, 0, time.UTC))
	dirSrv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(time.Hour))
	if _, err := net.Listen("dir", dirSrv.Handler()); err != nil {
		log.Fatal(err)
	}

	// 2. Three devices, each with its own kernel node + calendar.
	// Each node's interceptor chains record metrics and cache
	// directory routes (warm invocations skip the name server).
	reg := metrics.NewRegistry()
	mail := notify.NewMailbox()
	cals := map[string]*calendar.Calendar{}
	for _, user := range []string{"phil", "andy", "suzy"} {
		node, err := core.Start(ctx, core.Config{User: user, Net: net, DirAddr: "dir", Clock: clk},
			core.WithMetrics(reg), core.WithRouteCache(30*time.Second))
		if err != nil {
			log.Fatal(err)
		}
		c, err := calendar.New(ctx, node, calendar.WithNotifier(mail))
		if err != nil {
			log.Fatal(err)
		}
		cals[user] = c
	}

	// 3. Andy is busy Tuesday morning.
	if err := cals["andy"].MarkBusy(calendar.Slot{Day: "2003-04-22", Hour: 9}, "dentist", 0); err != nil {
		log.Fatal(err)
	}

	// 4. Phil schedules a meeting with both — the kernel finds the
	// common free slot and reserves it atomically via a
	// negotiation-and link.
	m, err := cals["phil"].SetupMeeting(ctx, calendar.Request{
		Title:   "SyD design review",
		FromDay: "2003-04-22", ToDay: "2003-04-23",
		Must: []string{"andy", "suzy"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meeting %s %q: %s at %s\n", m.ID, m.Title, m.Status, m.Slot)
	fmt.Printf("reserved participants: %v\n", m.Reserved)

	// 5. Every device now holds the slot and the coordination link.
	for user, c := range cals {
		info := c.Slot(m.Slot)
		_, hasLink := c.Links().GetLink(m.LinkID)
		fmt.Printf("  %-5s slot=%s link=%v inbox=%d\n", user, info.Meeting, hasLink, mail.Count(user))
	}

	// 6. What the middleware measured while all of that happened.
	fmt.Println("\nper-method RPC metrics:")
	fmt.Print(reg.Snapshot().Render())
}
