// Price-is-right — the third sample application named in the paper's
// Fig. 2: "a price-is-right bidding game suitable to be played at an
// airport or a mall". Each player is an independent SyD device; the
// host collects bids with one group invocation and commits the sale to
// the winner atomically with a negotiation-and link (the winner's
// wallet and the host's inventory change together or not at all).
//
//	go run ./examples/priceisright
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/bidding"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/sim"
)

func main() {
	ctx := context.Background()
	net := sim.New(sim.Config{})
	dirSrv := directory.NewServer(directory.WithTTL(time.Hour))
	if _, err := net.Listen("dir", dirSrv.Handler()); err != nil {
		log.Fatal(err)
	}

	hostNode, err := core.Start(ctx, core.Config{User: "host", Net: net, DirAddr: "dir"})
	if err != nil {
		log.Fatal(err)
	}
	host := bidding.NewHost(hostNode, 3)

	names := []string{"ana", "ben", "eva", "tom"}
	players := map[string]*bidding.Player{}
	for i, id := range names {
		node, err := core.Start(ctx, core.Config{User: id, Net: net, DirAddr: "dir"})
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i + 1)))
		p, err := bidding.NewPlayer(ctx, node, 500, func(listPrice int) int {
			return listPrice - 40 + rng.Intn(80) // guess around the list price
		})
		if err != nil {
			log.Fatal(err)
		}
		players[id] = p
	}

	for round := 1; round <= 3; round++ {
		listPrice := 100 + round*37
		fmt.Printf("\nround %d — item lists at $%d\n", round, listPrice)
		res := host.PlayRound(ctx, names, listPrice)
		for _, b := range res.Bids {
			fmt.Printf("  %s bids $%d\n", b.Player, b.Amount)
		}
		switch {
		case res.Complete:
			fmt.Printf("  %s wins at $%d (wallet now $%d, inventory %d)\n",
				res.Winner, res.Price, players[res.Winner].Wallet(), host.Inventory())
		case res.SaleErr != nil:
			fmt.Printf("  sale failed: %v\n", res.SaleErr)
		default:
			fmt.Println("  everyone overbid — no sale")
		}
	}

	fmt.Println("\nfinal standings (by remaining wallet):")
	for i, id := range bidding.Leaderboard(players) {
		fmt.Printf("  %d. %-4s $%d, wins at %v\n", i+1, id, players[id].Wallet(), players[id].Wins())
	}
}
