// Flat-file device — the paper's heterogeneity claim (§2): a SyD data
// store "may be a traditional database ... or may be an ad-hoc data
// store such as a flat file, an EXCEL worksheet or a list repository".
//
// This example keeps a device's calendar as a plain CSV file on disk:
// the file is loaded into the device store at boot, the device
// participates in normal SyD meeting coordination, and the (changed)
// calendar is written back as CSV — remote callers never know the
// difference, because the deviceware encapsulates the store.
//
//	go run ./examples/flatfile
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/calendar"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/sim"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "syd-flatfile")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	csvPath := filepath.Join(dir, "andy-calendar.csv")

	// Andy's calendar lives in a hand-editable CSV flat file.
	seed := "day,hour,meeting,priority\n" +
		"2003-04-22,9,personal:standup,0\n" +
		"2003-04-22,10,personal:gym,0\n"
	if err := os.WriteFile(csvPath, []byte(seed), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("andy's flat-file calendar (%s):\n%s\n", csvPath, seed)

	net := sim.New(sim.Config{})
	dirSrv := directory.NewServer(directory.WithTTL(time.Hour))
	if _, err := net.Listen("dir", dirSrv.Handler()); err != nil {
		log.Fatal(err)
	}
	cals := map[string]*calendar.Calendar{}
	nodes := map[string]*core.Node{}
	for _, user := range []string{"phil", "andy"} {
		node, err := core.Start(ctx, core.Config{User: user, Net: net, DirAddr: "dir"})
		if err != nil {
			log.Fatal(err)
		}
		c, err := calendar.New(ctx, node)
		if err != nil {
			log.Fatal(err)
		}
		cals[user], nodes[user] = c, node
	}

	// Load the flat file into andy's device store.
	slotsTable, err := nodes["andy"].DB.Table("cal_slots")
	if err != nil {
		log.Fatal(err)
	}
	if err := slotsTable.LoadCSVFile(csvPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d slots from the flat file\n", slotsTable.Count())

	// Phil schedules a meeting — the search must route around the
	// flat-file appointments (9:00 and 10:00 are taken).
	m, err := cals["phil"].SetupMeeting(ctx, calendar.Request{
		Title: "sync", FromDay: "2003-04-22", ToDay: "2003-04-22", Must: []string{"andy"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meeting %s scheduled %s at %s (skipped andy's CSV slots)\n", m.ID, m.Status, m.Slot)
	if m.Slot.Hour == 9 || m.Slot.Hour == 10 {
		log.Fatal("flat-file slots ignored")
	}

	// Write andy's calendar back to the flat file — now including the
	// coordinated meeting.
	if err := slotsTable.SaveCSVFile(csvPath); err != nil {
		log.Fatal(err)
	}
	out, err := os.ReadFile(csvPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflat file after coordination:\n%s", out)
}
