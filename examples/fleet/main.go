// SyDFleet — the second sample application named in the paper's Fig. 2
// (and reference [1]): vehicles carry independent data stores with
// their position and cargo; the dispatcher queries the fleet as a
// group through SyDEngine; a subscription link streams geofence alerts
// back to the depot — no vehicle knows about any other.
//
//	go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/fleet"
	"repro/internal/sim"
)

func main() {
	ctx := context.Background()
	net := sim.New(sim.Config{})
	dirSrv := directory.NewServer(directory.WithTTL(time.Hour))
	if _, err := net.Listen("dir", dirSrv.Handler()); err != nil {
		log.Fatal(err)
	}

	depotNode, err := core.Start(ctx, core.Config{User: "depot", Net: net, DirAddr: "dir"})
	if err != nil {
		log.Fatal(err)
	}
	depot := fleet.NewDepot(depotNode)

	const depotLat, depotLon = 33.75, -84.39
	ids := []string{"truck1", "truck2", "truck3"}
	vehicles := map[string]*fleet.Vehicle{}
	for _, id := range ids {
		node, err := core.Start(ctx, core.Config{User: id, Net: net, DirAddr: "dir"})
		if err != nil {
			log.Fatal(err)
		}
		v, err := fleet.NewVehicle(ctx, node, depotLat, depotLon)
		if err != nil {
			log.Fatal(err)
		}
		if err := v.WatchGeofence("depot", depotLat, depotLon, 0.25); err != nil {
			log.Fatal(err)
		}
		vehicles[id] = v
	}
	if err := depot.RegisterFleet(ctx, "fleet", ids); err != nil {
		log.Fatal(err)
	}

	positions, err := depot.FleetPositions(ctx, "fleet")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fleet positions:")
	for _, id := range ids {
		p := positions[id]
		fmt.Printf("  %-8s lat=%.2f lon=%.2f cargo=%q\n", id, p.Lat, p.Lon, p.Cargo)
	}

	chosen, err := depot.Assign(ctx, "fleet", "pallets", depotLat, depotLon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assigned pallets to %s\n", chosen)

	// The loaded truck drives off; crossing the geofence fires its
	// subscription link and the depot gets the alert.
	for step := 1; step <= 4; step++ {
		if err := vehicles[chosen].MoveTo(ctx, depotLat+0.1*float64(step), depotLon); err != nil {
			log.Fatal(err)
		}
	}
	select {
	case a := <-depot.Alerts():
		fmt.Printf("depot alert: vehicle %s left the service area (%.2f,%.2f)\n", a.Vehicle, a.Lat, a.Lon)
	case <-time.After(2 * time.Second):
		log.Fatal("no geofence alert arrived")
	}
}
