// Package repro holds the top-level benchmark harness: one testing.B
// benchmark per figure/table-equivalent of the paper (see DESIGN.md §4
// and EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem .
//
// The F/E/T benchmarks wrap the experiment runners (which also verify
// the paper-shape assertions on every iteration); the Micro benchmarks
// isolate the kernel primitives the experiments are built from.
package repro

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/directory"
	"repro/internal/engine"
	"repro/internal/listener"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/wal"
)

// benchExperiment runs one registered experiment per iteration. The
// bodies live in internal/bench so sydbench -bench-json measures the
// exact same code.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	bench.Experiment(b, id)
}

// Figure-equivalents (paper Figs. 1-4).
func BenchmarkF1_LayeredInvocation(b *testing.B)    { benchExperiment(b, "F1") }
func BenchmarkF2_LayerOverhead(b *testing.B)        { benchExperiment(b, "F2") }
func BenchmarkF3_DirectoryOps(b *testing.B)         { benchExperiment(b, "F3") }
func BenchmarkF3s_DirectoryOpsSharded(b *testing.B) { benchExperiment(b, "F3s") }
func BenchmarkF4_NegotiationOr(b *testing.B)        { benchExperiment(b, "F4") }

// BenchmarkF4_FailoverRecovery measures a complete replication
// failover round: primary dies, the follower wins the expired lease,
// boots over the shipped WAL, and the directory re-points.
func BenchmarkF4_FailoverRecovery(b *testing.B) { bench.F4FailoverRecovery(b) }

// Scenario-equivalents (paper §4.4 and §5).
func BenchmarkE1_CancelCascade(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2_TentativeConfirm(b *testing.B)   { benchExperiment(b, "E2") }
func BenchmarkE3_VetoAndBump(b *testing.B)        { benchExperiment(b, "E3") }
func BenchmarkE4_Supervisor(b *testing.B)         { benchExperiment(b, "E4") }
func BenchmarkE5_Quorum(b *testing.B)             { benchExperiment(b, "E5") }
func BenchmarkE6_CommitteeAppObject(b *testing.B) { benchExperiment(b, "E6") }

// Table-equivalents (paper §6 comparison + implied performance).
func BenchmarkT1_SyDvsBaseline(b *testing.B)     { benchExperiment(b, "T1") }
func BenchmarkT2_PerformanceSweeps(b *testing.B) { benchExperiment(b, "T2") }

// Ablations (DESIGN.md §5).
func BenchmarkA1_LockStrategy(b *testing.B)     { benchExperiment(b, "A1") }
func BenchmarkA2_TriggerPlacement(b *testing.B) { benchExperiment(b, "A2") }

// --- micro benchmarks of the kernel primitives -----------------------------

// BenchmarkMicro_EngineInvoke measures one directory-resolved remote
// invocation on an ideal network.
func BenchmarkMicro_EngineInvoke(b *testing.B) { bench.MicroEngineInvoke(b) }

// BenchmarkMicro_DirectoryLookupSharded measures one route-only
// resolution against a 4-shard directory behind the control plane.
func BenchmarkMicro_DirectoryLookupSharded(b *testing.B) { bench.MicroDirectoryLookupSharded(b) }

// BenchmarkMicro_GroupInvoke measures a fan-out over 8 members.
func BenchmarkMicro_GroupInvoke(b *testing.B) { bench.MicroGroupInvoke(b) }

// BenchmarkMicro_NegotiationAnd measures a full two-phase
// negotiation-and over three remote entities (reserve + release).
func BenchmarkMicro_NegotiationAnd(b *testing.B) { bench.MicroNegotiationAnd(b) }

// BenchmarkMicro_MeetingLifecycle measures setup + cancel of a
// three-party meeting (the full link topology install and cascade).
func BenchmarkMicro_MeetingLifecycle(b *testing.B) { bench.MicroMeetingLifecycle(b) }

// BenchmarkMicro_WALShip measures one replication shipping round: a
// logged mutation read back as WAL frames and applied by a follower
// receiver.
func BenchmarkMicro_WALShip(b *testing.B) { bench.MicroWALShip(b) }

// BenchmarkMicro_SyncReconnect measures one disconnected-operation
// round trip: directory Touch, offline queue push through the real
// negotiation path, and the relevance pull.
func BenchmarkMicro_SyncReconnect(b *testing.B) { bench.MicroSyncReconnect(b) }

// BenchmarkDirectoryCache contrasts the Invoke hot path with and
// without the client-side route cache: "uncached" pays a directory
// lookup per call, "cached" resolves once and then serves the route
// from memory (zero directory traffic on the warm path).
func BenchmarkDirectoryCache(b *testing.B) {
	setup := func(b *testing.B, opts ...engine.Option) *engine.Engine {
		b.Helper()
		net := sim.New(sim.Config{})
		srv := directory.NewServer(directory.WithTTL(time.Hour))
		dln, err := net.Listen("dir", srv.Handler())
		if err != nil {
			b.Fatal(err)
		}
		dir := directory.NewClient(net, dln.Addr())
		l := listener.New("phil", nil)
		obj := listener.NewObject()
		obj.Handle("Ping", func(ctx context.Context, call *listener.Call) (any, error) { return "pong", nil })
		l.Register("cal.phil", obj)
		nln, err := net.Listen("node-phil", l)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		if err := dir.RegisterUser(ctx, "phil", nln.Addr(), 0); err != nil {
			b.Fatal(err)
		}
		if err := l.PublishGlobal(ctx, dir, "cal.phil", nln.Addr()); err != nil {
			b.Fatal(err)
		}
		return engine.New(net, dir, "andy", opts...)
	}
	run := func(b *testing.B, eng *engine.Engine) {
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Invoke(ctx, "cal.phil", "Ping", nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("uncached", func(b *testing.B) {
		run(b, setup(b))
	})
	b.Run("cached", func(b *testing.B) {
		run(b, setup(b, engine.WithDirCache(engine.NewDirCache(time.Hour))))
	})
}

// BenchmarkWALCommit measures the durable commit path under the two
// fsync policies: "per-commit" pays a write+fsync per insert, "group"
// lets concurrent commits share one fsync (the group-commit batch).
// The gap is the durability subsystem's headline number; on fast
// storage (tmpfs) it shows as fewer syscalls rather than less latency.
func BenchmarkWALCommit(b *testing.B) {
	run := func(b *testing.B, sync wal.SyncPolicy) {
		d, err := wal.Open(b.TempDir(), wal.Options{Sync: sync})
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		tab, err := d.DB.CreateTable(store.Schema{
			Name: "bench",
			Columns: []store.Column{
				{Name: "id", Type: store.Int},
				{Name: "val", Type: store.String},
			},
			Key: []string{"id"},
		})
		if err != nil {
			b.Fatal(err)
		}
		var next int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				id := atomic.AddInt64(&next, 1)
				if err := tab.Insert(store.Row{"id": id, "val": "x"}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		st := d.Stats()
		if st.Appends > 0 {
			b.ReportMetric(float64(st.Fsyncs)/float64(st.Appends), "fsyncs/op")
		}
	}
	b.Run("per-commit", func(b *testing.B) { run(b, wal.SyncPerCommit) })
	b.Run("group", func(b *testing.B) { run(b, wal.SyncGroup) })
}
