// Command sydbench runs the experiment harness that regenerates every
// figure- and table-equivalent of the paper (DESIGN.md §4):
//
//	sydbench                      # run everything
//	sydbench -run F4              # run one experiment
//	sydbench -run E               # run every experiment whose id has the prefix
//	sydbench -list                # list experiment ids and titles
//	sydbench -metrics             # also print the per-method RPC metrics snapshot
//	sydbench -trace 5             # trace the runs, print the 5 slowest flame trees
//	sydbench -bench-json out.json # run the benchmark trajectory suite instead,
//	                              # writing ns/op, allocs/op, B/op per benchmark
//	sydbench -bench-json out.json -bench Micro  # filter by name prefix
//
//	sydbench -scale storm -devices 10000          # time-compressed fleet run
//	sydbench -scale all -scale-json BENCH_scale.json  # full catalog, write report
//	sydbench -scale churn -topo sharded4          # one scenario × one topology
//
// The trajectory suite (internal/bench) is the same set of bodies
// `go test -bench` measures; committing its output as BENCH_rpc.json
// tracks the RPC hot path's cost across PRs. The scale suite
// (internal/scale) boots thousands of simulated devices under an
// auto-advancing fake clock; its reports are deterministic for a given
// seed, so the committed BENCH_scale.json is gated exactly by
// cmd/benchgate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/scale"
	"repro/internal/trace"
)

// trajectoryFile is the JSON document -bench-json writes.
type trajectoryFile struct {
	Date       string         `json:"date"`
	GoOS       string         `json:"goos"`
	GoArch     string         `json:"goarch"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Benchmarks []bench.Result `json:"benchmarks"`
}

func runBenchJSON(path, filter string) int {
	var out trajectoryFile
	out.Date = time.Now().UTC().Format(time.RFC3339)
	out.GoOS = runtime.GOOS
	out.GoArch = runtime.GOARCH
	out.GoMaxProcs = runtime.GOMAXPROCS(0)
	for _, def := range bench.Trajectory() {
		if filter != "" && !strings.HasPrefix(def.Name, filter) {
			continue
		}
		r := bench.Run(def)
		fmt.Printf("%-24s %10d iters  %12.0f ns/op  %8d B/op  %6d allocs/op\n",
			r.Name, r.Iterations, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		out.Benchmarks = append(out.Benchmarks, r)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "no benchmark matches -bench %q\n", filter)
		return 2
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sydbench: encode results: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sydbench: write %s: %v\n", path, err)
		return 1
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(out.Benchmarks), path)
	return 0
}

// scaleFile is the JSON document -scale-json writes (and benchgate
// gates as BENCH_scale.json). Only Reports matters to the gate; the
// header records provenance.
type scaleFile struct {
	Date    string          `json:"date"`
	GoOS    string          `json:"goos"`
	GoArch  string          `json:"goarch"`
	Devices int             `json:"devices"`
	Seed    int64           `json:"seed"`
	Reports []*scale.Report `json:"reports"`
}

func runScale(scenario, topo string, devices int, seed int64, outPath string) int {
	scns := []string{scenario}
	if scenario == "all" {
		scns = scale.Scenarios()
	}
	topos := scale.Topologies()
	if topo != "all" {
		topos = []scale.Topology{scale.Topology(topo)}
	}
	out := scaleFile{
		Date:    time.Now().UTC().Format(time.RFC3339),
		GoOS:    runtime.GOOS,
		GoArch:  runtime.GOARCH,
		Devices: devices,
		Seed:    seed,
	}
	for _, scn := range scns {
		for _, tp := range topos {
			r, err := scale.Run(scale.Config{Scenario: scn, Topology: tp, Devices: devices, Seed: seed})
			if err != nil {
				fmt.Fprintf(os.Stderr, "sydbench: scale %s/%s: %v\n", scn, tp, err)
				return 1
			}
			fmt.Printf("%-7s %-10s %6d dev  p50 %8.1fms  p95 %8.1fms  p99 %8.1fms  commit %5d  abort %5d  queued %4d  in-doubt %d  (%d timer fires, %.1fs wall)\n",
				r.Scenario, r.Topology, r.Devices,
				r.Latency.P50MS, r.Latency.P95MS, r.Latency.P99MS,
				r.Outcomes.Committed, r.Outcomes.Aborted, r.Outcomes.Queued, r.Outcomes.InDoubt,
				r.ClockFired, float64(r.WallMS)/1000)
			out.Reports = append(out.Reports, r)
		}
	}
	if outPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "sydbench: encode scale reports: %v\n", err)
			return 1
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sydbench: write %s: %v\n", outPath, err)
			return 1
		}
		fmt.Printf("wrote %d scale reports to %s\n", len(out.Reports), outPath)
	}
	return 0
}

func main() {
	runFilter := flag.String("run", "", "experiment id or id prefix to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	showMetrics := flag.Bool("metrics", false, "print the per-service/method metrics snapshot after the runs")
	benchJSON := flag.String("bench-json", "", "run the benchmark trajectory suite and write JSON results to this file")
	benchFilter := flag.String("bench", "", "with -bench-json: benchmark name prefix filter")
	traceN := flag.Int("trace", 0, "trace the experiments and print the N slowest stitched traces as flame trees")
	scaleScn := flag.String("scale", "", "run the time-compressed scale harness: a scenario name or 'all'")
	scaleTopo := flag.String("topo", "all", "with -scale: topology (single, sharded4, replicated) or 'all'")
	scaleDevices := flag.Int("devices", 500, "with -scale: simulated fleet size")
	scaleSeed := flag.Int64("seed", 1, "with -scale: workload seed (same seed, same report bytes)")
	scaleJSON := flag.String("scale-json", "", "with -scale: write the reports as JSON to this file")
	flag.Parse()

	if *benchJSON != "" {
		os.Exit(runBenchJSON(*benchJSON, *benchFilter))
	}
	if *scaleScn != "" {
		os.Exit(runScale(*scaleScn, *scaleTopo, *scaleDevices, *scaleSeed, *scaleJSON))
	}

	if *traceN > 0 {
		// Head-sample everything: the harness wants complete trees, and
		// experiment volume is small enough for the per-node rings.
		trace.EnableDefault(1.0, 0)
	}

	reg, ids := experiments.All()
	if *list {
		for _, id := range ids {
			fmt.Printf("%s\n", id)
		}
		return
	}

	ran := 0
	failed := 0
	for _, id := range ids {
		if *runFilter != "" && !strings.HasPrefix(id, *runFilter) {
			continue
		}
		ran++
		res, err := reg[id]()
		if res != nil {
			fmt.Println(res.Render())
		}
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "experiment %s FAILED: %v\n", id, err)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -run %q (use -list)\n", *runFilter)
		os.Exit(2)
	}
	if *traceN > 0 {
		fmt.Printf("== %d slowest traces ==\n", *traceN)
		fmt.Print(trace.Default().RenderSlowest(*traceN))
	}
	if *showMetrics {
		fmt.Println("== RPC metrics (per service/method/code) ==")
		fmt.Print(metrics.Default().Snapshot().Render())
		fmt.Println("== wire frames ==")
		fmt.Print(metrics.Wire().Snapshot().Render())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
