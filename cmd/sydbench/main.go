// Command sydbench runs the experiment harness that regenerates every
// figure- and table-equivalent of the paper (DESIGN.md §4):
//
//	sydbench            # run everything
//	sydbench -run F4    # run one experiment
//	sydbench -run E     # run every experiment whose id has the prefix
//	sydbench -list      # list experiment ids and titles
//	sydbench -metrics   # also print the per-method RPC metrics snapshot
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	runFilter := flag.String("run", "", "experiment id or id prefix to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	showMetrics := flag.Bool("metrics", false, "print the per-service/method metrics snapshot after the runs")
	flag.Parse()

	reg, ids := experiments.All()
	if *list {
		for _, id := range ids {
			fmt.Printf("%s\n", id)
		}
		return
	}

	ran := 0
	failed := 0
	for _, id := range ids {
		if *runFilter != "" && !strings.HasPrefix(id, *runFilter) {
			continue
		}
		ran++
		res, err := reg[id]()
		if res != nil {
			fmt.Println(res.Render())
		}
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "experiment %s FAILED: %v\n", id, err)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -run %q (use -list)\n", *runFilter)
		os.Exit(2)
	}
	if *showMetrics {
		fmt.Println("== RPC metrics (per service/method/code) ==")
		fmt.Print(metrics.Default().Snapshot().Render())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
