// Command sydcal is the calendar CLI — the "client interface" of the
// paper's two-part application split (§3.1): it talks to running
// sydnode instances through the directory.
//
//	sydcal -dir 127.0.0.1:7000 free -user phil -from 2003-04-21 -to 2003-04-25
//	sydcal -dir 127.0.0.1:7000 slots -user phil -day 2003-04-21 -hour 14
//	sydcal -dir 127.0.0.1:7000 meetings -user phil
//	sydcal -dir 127.0.0.1:7000 users
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/calendar"
	"repro/internal/directory"
	"repro/internal/engine"
	"repro/internal/transport"
	"repro/internal/wire"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: sydcal [-dir addr] <command> [flags]

commands:
  users                                  list registered users
  free     -user U -from D -to D         list U's free slots
  slots    -user U -day D -hour H        show one slot's occupancy
  meetings -user U                       list U's meetings
  schedule -user U -title T -from D -to D -must a,b,c
                                         set up a meeting initiated by U
  cancel   -user U -as CALLER -id M      cancel meeting M at U's node
`)
	os.Exit(2)
}

func main() {
	dirAddr := flag.String("dir", "127.0.0.1:7000", "directory server address")
	cpAddr := flag.String("control-plane", "", "sharded-directory control plane address (overrides -dir)")
	poolSize := flag.Int("conn-pool", 0, "TCP connections per peer (0 = min(4, GOMAXPROCS))")
	wireCodec := flag.String("wire-codec", "json", "frame body codec to send: json or v3 (negotiated per connection; json stays the fallback)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	cmd := flag.Arg(0)
	sub := flag.NewFlagSet(cmd, flag.ExitOnError)
	user := sub.String("user", "", "target user")
	from := sub.String("from", "", "window start day (YYYY-MM-DD)")
	to := sub.String("to", "", "window end day")
	day := sub.String("day", "", "slot day")
	hour := sub.Int("hour", 9, "slot hour")
	caller := sub.String("as", "cli", "acting user identity")
	id := sub.String("id", "", "meeting id")
	title := sub.String("title", "meeting", "meeting title")
	must := sub.String("must", "", "comma-separated must-attendees")
	priority := sub.Int("priority", 0, "meeting priority")
	if err := sub.Parse(flag.Args()[1:]); err != nil {
		usage()
	}

	codec, err := wire.ParseCodec(*wireCodec)
	if err != nil {
		log.Fatal(err)
	}
	net := transport.NewTCP(transport.WithPoolSize(*poolSize), transport.WithWireCodec(codec))
	var dir *directory.Client
	if *cpAddr != "" {
		dir = directory.NewShardedClient(net, *cpAddr)
	} else {
		dir = directory.NewClient(net, *dirAddr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	switch cmd {
	case "users":
		infos, err := dir.ListUsers(ctx)
		if err != nil {
			log.Fatalf("sydcal: %v", err)
		}
		for _, u := range infos {
			state := "offline"
			if u.Online {
				state = "online"
			}
			fmt.Printf("%-12s %-8s prio=%d addr=%s proxy=%s\n", u.ID, state, u.Priority, u.Addr, u.Proxy)
		}
	case "free":
		requireUser(*user)
		eng := engine.New(net, dir, *caller)
		var slots []calendar.Slot
		err := eng.Invoke(ctx, calendar.ServiceFor(*user), "GetFreeSlots",
			wire.Args{"from": *from, "to": *to}, &slots)
		if err != nil {
			log.Fatalf("sydcal: %v", err)
		}
		for _, s := range slots {
			fmt.Println(s)
		}
	case "slots":
		requireUser(*user)
		eng := engine.New(net, dir, *caller)
		var info calendar.SlotInfo
		err := eng.Invoke(ctx, calendar.ServiceFor(*user), "SlotInfo",
			wire.Args{"day": *day, "hour": *hour}, &info)
		if err != nil {
			log.Fatalf("sydcal: %v", err)
		}
		if info.Meeting == "" {
			fmt.Printf("%s: free\n", info.Slot)
		} else {
			fmt.Printf("%s: %s (prio %d)\n", info.Slot, info.Meeting, info.Priority)
		}
	case "meetings":
		requireUser(*user)
		eng := engine.New(net, dir, *caller)
		var meetings []calendar.Meeting
		if err := eng.Invoke(ctx, calendar.ServiceFor(*user), "ListMeetings", nil, &meetings); err != nil {
			log.Fatalf("sydcal: %v", err)
		}
		for _, m := range meetings {
			fmt.Printf("%-16s %-10s %s %q initiator=%s reserved=%v missing=%v\n",
				m.ID, m.Status, m.Slot, m.Title, m.Initiator, m.Reserved, m.Missing)
		}
	case "schedule":
		requireUser(*user)
		eng := engine.New(net, dir, *caller)
		var participants []string
		for _, p := range strings.Split(*must, ",") {
			if p = strings.TrimSpace(p); p != "" {
				participants = append(participants, p)
			}
		}
		var m calendar.Meeting
		err := eng.Invoke(ctx, calendar.ServiceFor(*user), "Schedule", wire.Args{
			"title": *title, "from": *from, "to": *to, "must": participants,
			"request": map[string]any{
				"title": *title, "fromDay": *from, "toDay": *to,
				"must": participants, "priority": *priority,
			},
		}, &m)
		if err != nil {
			log.Fatalf("sydcal: %v", err)
		}
		fmt.Printf("meeting %s %q %s at %s (reserved %v)\n", m.ID, m.Title, m.Status, m.Slot, m.Reserved)
	case "cancel":
		requireUser(*user)
		if *id == "" {
			log.Fatal("sydcal: -id is required")
		}
		eng := engine.New(net, dir, *caller)
		err := eng.Invoke(ctx, calendar.ServiceFor(*user), "CancelMeeting",
			wire.Args{"meeting": *id}, nil)
		if err != nil {
			log.Fatalf("sydcal: %v", err)
		}
		fmt.Printf("meeting %s cancelled\n", *id)
	default:
		usage()
	}
}

func requireUser(u string) {
	if u == "" {
		log.Fatal("sydcal: -user is required")
	}
}
