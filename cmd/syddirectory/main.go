// Command syddirectory runs a standalone SyDDirectory name server
// over real TCP — the deployment role the paper's "Name Server" plays
// (§5.2): user/service/group registry and proxy bindings for a SyD
// deployment.
//
//	syddirectory -addr 127.0.0.1:7000 [-state /var/lib/syd/dir.json]
//
// With -state, the registry is loaded at startup (if the file exists)
// and saved on shutdown and periodically, so a directory restart does
// not force every device to re-register.
//
// With -shards N (N > 1) the process runs a sharded directory: the
// control plane binds -addr and publishes the epoch-versioned shard
// map, and N shard servers bind -shard-addrs (comma-separated; when
// omitted, consecutive ports above -addr). Clients point -control-plane
// at -addr instead of -dir. Each shard persists its own slice of the
// registry to <state>.shardK:
//
//	syddirectory -addr 127.0.0.1:7000 -shards 4 \
//	    -shard-addrs 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003,127.0.0.1:7004 \
//	    -state /var/lib/syd/dir.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	stdnet "net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/controlplane"
	"repro/internal/directory"
	"repro/internal/replication"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7000", "address to bind (the control plane's address when -shards > 1)")
	ttl := flag.Duration("ttl", directory.DefaultHeartbeatTTL, "heartbeat TTL before a silent device counts as offline")
	statePath := flag.String("state", "", "optional path to persist the registry across restarts")
	saveEvery := flag.Duration("save-every", 30*time.Second, "periodic save interval when -state is set")
	poolSize := flag.Int("conn-pool", 0, "TCP connections per peer (0 = min(4, GOMAXPROCS))")
	shards := flag.Int("shards", 1, "number of directory shards (1 = single unsharded server)")
	shardAddrs := flag.String("shard-addrs", "", "comma-separated shard bind addresses (defaults to consecutive ports above -addr)")
	healthSweep := flag.Duration("health-sweep", 0, "run the replication health sweeper this often: expired leases whose primary is gone get the best follower promoted (0 = off)")
	wireCodec := flag.String("wire-codec", "json", "frame body codec to send: json or v3 (negotiated per connection; json stays the fallback)")
	flag.Parse()

	codec, err := wire.ParseCodec(*wireCodec)
	if err != nil {
		log.Fatal(err)
	}
	net := transport.NewTCP(transport.WithPoolSize(*poolSize), transport.WithWireCodec(codec))

	if *shards <= 1 {
		// Single-server mode: exactly the pre-shard deployment.
		srv := loadOrNew(*statePath, *ttl)
		ln, err := net.Listen(*addr, srv.Handler())
		if err != nil {
			log.Fatalf("syddirectory: %v", err)
		}
		log.Printf("syddirectory: serving on %s (heartbeat TTL %v)", ln.Addr(), *ttl)
		startSweeper(net, directory.NewClient(net, ln.Addr()), *healthSweep)
		run([]saver{{srv, *statePath}}, *saveEvery, ln.Close)
		return
	}

	binds, err := shardBinds(*addr, *shardAddrs, *shards)
	if err != nil {
		log.Fatalf("syddirectory: %v", err)
	}
	shardList := make([]controlplane.Shard, *shards)
	servers := make([]*directory.Server, *shards)
	savers := make([]saver, 0, *shards)
	var closers []func() error
	for i := 0; i < *shards; i++ {
		id := fmt.Sprintf("shard%d", i)
		path := shardStatePath(*statePath, i)
		srv := loadOrNew(path, *ttl, directory.WithShard(id))
		ln, err := net.Listen(binds[i], srv.Handler())
		if err != nil {
			log.Fatalf("syddirectory: shard %s: %v", id, err)
		}
		shardList[i] = controlplane.Shard{ID: id, Addr: ln.Addr()}
		servers[i] = srv
		savers = append(savers, saver{srv, path})
		closers = append(closers, ln.Close)
	}
	ctl := controlplane.NewController(shardList)
	for _, srv := range servers {
		ctl.Subscribe(srv.SetTable)
	}
	cln, err := net.Listen(*addr, ctl.Handler())
	if err != nil {
		log.Fatalf("syddirectory: control plane: %v", err)
	}
	closers = append(closers, cln.Close)
	startSweeper(net, directory.NewShardedClient(net, cln.Addr()), *healthSweep)
	log.Printf("syddirectory: control plane on %s, %d shards (heartbeat TTL %v)", cln.Addr(), *shards, *ttl)
	for _, s := range shardList {
		log.Printf("syddirectory: %s on %s", s.ID, s.Addr)
	}
	run(savers, *saveEvery, func() error {
		var first error
		for _, c := range closers {
			if err := c(); err != nil && first == nil {
				first = err
			}
		}
		return first
	})
}

// startSweeper runs the replication health sweeper against this
// directory when -health-sweep is set: the control-plane backstop that
// promotes a follower when a dead primary's followers cannot see the
// expiry themselves.
func startSweeper(net transport.Network, dir *directory.Client, every time.Duration) {
	if every <= 0 {
		return
	}
	sweeper, err := replication.NewSweeper(replication.SweeperConfig{
		Net: net, Dir: dir, Grace: every, Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("syddirectory: health sweeper: %v", err)
	}
	sweeper.Start(context.Background(), every)
	log.Printf("syddirectory: replication health sweeper every %v", every)
}

// saver pairs a shard server with its persistence path ("" = none).
type saver struct {
	srv  *directory.Server
	path string
}

// run drives the periodic-save loop until SIGINT/SIGTERM, then saves
// once more and closes the listeners.
func run(savers []saver, saveEvery time.Duration, closeAll func() error) {
	saveAll := func() {
		for _, s := range savers {
			if s.path != "" {
				save(s.srv, s.path)
			}
		}
	}
	persisting := false
	for _, s := range savers {
		if s.path != "" {
			persisting = true
		}
	}
	stopSave := make(chan struct{})
	if persisting {
		go func() {
			t := time.NewTicker(saveEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					saveAll()
				case <-stopSave:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("syddirectory: shutting down")
	close(stopSave)
	saveAll()
	if err := closeAll(); err != nil {
		log.Printf("syddirectory: close: %v", err)
	}
}

// shardBinds resolves the shard bind addresses: the -shard-addrs list
// when given, otherwise the -addr host with consecutive ports above
// the control plane's.
func shardBinds(cpAddr, list string, n int) ([]string, error) {
	if list != "" {
		binds := strings.Split(list, ",")
		if len(binds) != n {
			return nil, fmt.Errorf("-shard-addrs has %d addresses, -shards is %d", len(binds), n)
		}
		for i := range binds {
			binds[i] = strings.TrimSpace(binds[i])
		}
		return binds, nil
	}
	host, portStr, err := stdnet.SplitHostPort(cpAddr)
	if err != nil {
		return nil, fmt.Errorf("cannot derive shard addresses from -addr %q: %v (use -shard-addrs)", cpAddr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port == 0 {
		return nil, fmt.Errorf("cannot derive shard addresses from -addr %q (use -shard-addrs)", cpAddr)
	}
	binds := make([]string, n)
	for i := 0; i < n; i++ {
		binds[i] = stdnet.JoinHostPort(host, strconv.Itoa(port+1+i))
	}
	return binds, nil
}

// shardStatePath derives shard i's persistence path ("" stays "").
func shardStatePath(base string, i int) string {
	if base == "" {
		return ""
	}
	return fmt.Sprintf("%s.shard%d", base, i)
}

// loadOrNew restores the registry from statePath when possible.
func loadOrNew(statePath string, ttl time.Duration, opts ...directory.Option) *directory.Server {
	opts = append([]directory.Option{directory.WithTTL(ttl)}, opts...)
	if statePath != "" {
		if f, err := os.Open(statePath); err == nil {
			defer f.Close()
			srv, rerr := directory.RestoreServer(f, opts...)
			if rerr == nil {
				log.Printf("syddirectory: restored registry from %s", statePath)
				return srv
			}
			log.Printf("syddirectory: restore %s failed (%v); starting fresh", statePath, rerr)
		}
	}
	return directory.NewServer(opts...)
}

// save snapshots the registry atomically.
func save(srv *directory.Server, path string) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		log.Printf("syddirectory: save: %v", err)
		return
	}
	if err := srv.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		log.Printf("syddirectory: save: %v", err)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		log.Printf("syddirectory: save: %v", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		log.Printf("syddirectory: save: %v", err)
	}
}
