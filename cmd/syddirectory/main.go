// Command syddirectory runs a standalone SyDDirectory name server
// over real TCP — the deployment role the paper's "Name Server" plays
// (§5.2): user/service/group registry and proxy bindings for a SyD
// deployment.
//
//	syddirectory -addr 127.0.0.1:7000 [-state /var/lib/syd/dir.json]
//
// With -state, the registry is loaded at startup (if the file exists)
// and saved on shutdown and periodically, so a directory restart does
// not force every device to re-register.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/directory"
	"repro/internal/transport"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7000", "address to bind")
	ttl := flag.Duration("ttl", directory.DefaultHeartbeatTTL, "heartbeat TTL before a silent device counts as offline")
	statePath := flag.String("state", "", "optional path to persist the registry across restarts")
	saveEvery := flag.Duration("save-every", 30*time.Second, "periodic save interval when -state is set")
	poolSize := flag.Int("conn-pool", 0, "TCP connections per peer (0 = min(4, GOMAXPROCS))")
	flag.Parse()

	srv := loadOrNew(*statePath, *ttl)
	net := transport.NewTCP(transport.WithPoolSize(*poolSize))
	ln, err := net.Listen(*addr, srv.Handler())
	if err != nil {
		log.Fatalf("syddirectory: %v", err)
	}
	log.Printf("syddirectory: serving on %s (heartbeat TTL %v)", ln.Addr(), *ttl)

	stopSave := make(chan struct{})
	if *statePath != "" {
		go func() {
			t := time.NewTicker(*saveEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					save(srv, *statePath)
				case <-stopSave:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("syddirectory: shutting down")
	close(stopSave)
	if *statePath != "" {
		save(srv, *statePath)
	}
	if err := ln.Close(); err != nil {
		log.Printf("syddirectory: close: %v", err)
	}
}

// loadOrNew restores the registry from statePath when possible.
func loadOrNew(statePath string, ttl time.Duration) *directory.Server {
	if statePath != "" {
		if f, err := os.Open(statePath); err == nil {
			defer f.Close()
			srv, rerr := directory.RestoreServer(f, directory.WithTTL(ttl))
			if rerr == nil {
				log.Printf("syddirectory: restored registry from %s", statePath)
				return srv
			}
			log.Printf("syddirectory: restore %s failed (%v); starting fresh", statePath, rerr)
		}
	}
	return directory.NewServer(directory.WithTTL(ttl))
}

// save snapshots the registry atomically.
func save(srv *directory.Server, path string) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		log.Printf("syddirectory: save: %v", err)
		return
	}
	if err := srv.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		log.Printf("syddirectory: save: %v", err)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		log.Printf("syddirectory: save: %v", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		log.Printf("syddirectory: save: %v", err)
	}
}
