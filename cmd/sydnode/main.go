// Command sydnode runs one SyD device node over real TCP: the kernel
// (listener, engine, events, links) plus the calendar application —
// the role an iPAQ played in the paper's prototype.
//
//	sydnode -user phil -dir 127.0.0.1:7000 -addr 127.0.0.1:7101
//
// Notifications (the §5.1 meeting e-mails) are printed to stdout.
//
// # Replication
//
// With -data-dir and -lease-ttl the node becomes the primary of a
// replica set: it holds a directory lease and ships its write-ahead
// log to the followers named by -replicas. A follower is a second
// sydnode process started with -replica-of:
//
//	sydnode -user phil -data-dir /var/lib/syd/phil \
//	    -lease-ttl 10s -replicas 10.0.0.2:7201,10.0.0.3:7201
//	sydnode -replica-of phil -addr 10.0.0.2:7201 -data-dir /var/lib/syd/phil-r1 -lease-ttl 10s
//	sydnode -replica-of phil -addr 10.0.0.3:7201 -data-dir /var/lib/syd/phil-r2 -lease-ttl 10s
//
// When the primary dies, the best-caught-up follower wins the expired
// lease, boots a full node over its replicated data directory,
// re-points the directory bindings, and keeps serving as phil.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/calendar"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/links"
	"repro/internal/metrics"
	"repro/internal/notify"
	"repro/internal/offline"
	"repro/internal/replication"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/wire"
)

// serveDebug exposes the stock net/http/pprof handlers plus a
// plaintext dump of the node's retained traces (stitched flame trees,
// slowest first), a JSONL export for offline analysis, and the
// node's replication status as JSON.
func serveDebug(addr string, tracer *trace.Tracer, replStatus func() (replication.Status, bool)) {
	mux := http.DefaultServeMux // pprof registered itself here
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if tracer == nil {
			http.Error(w, "tracing is off (start with -trace-sample or -trace-slow)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, t := range trace.Stitch(tracer.Snapshot()) {
			w.Write([]byte(t.Render()))
		}
	})
	mux.HandleFunc("/traces.jsonl", func(w http.ResponseWriter, r *http.Request) {
		if tracer == nil {
			http.Error(w, "tracing is off (start with -trace-sample or -trace-slow)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = trace.WriteJSONL(w, tracer.Snapshot())
	})
	mux.HandleFunc("/replication", func(w http.ResponseWriter, r *http.Request) {
		st, ok := replStatus()
		if !ok {
			http.Error(w, "replication is off (start with -lease-ttl or -replica-of)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
	log.Printf("sydnode: debug server (pprof, /traces, /replication) on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("sydnode: debug server: %v", err)
	}
}

// splitList parses a comma-separated flag value.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	user := flag.String("user", "", "SyD user id (required unless -replica-of)")
	dirAddr := flag.String("dir", "127.0.0.1:7000", "directory server address")
	cpAddr := flag.String("control-plane", "", "sharded-directory control plane address (overrides -dir; use syddirectory -shards N)")
	addr := flag.String("addr", "127.0.0.1:0", "address to bind")
	priority := flag.Int("priority", 0, "user priority (§6)")
	statePath := flag.String("state", "", "optional path to persist the device database across restarts (legacy whole-DB snapshot; prefer -data-dir)")
	dataDir := flag.String("data-dir", "", "durable data directory (write-ahead log + checkpoints); the device database survives crashes")
	checkpointEvery := flag.Duration("checkpoint-interval", time.Minute, "with -data-dir: snapshot the database and trim the log this often (0 = only at shutdown)")
	fsyncPolicy := flag.String("fsync", "group", "with -data-dir: fsync policy — group (batched group commit), always (fsync per commit), none")
	introspect := flag.Bool("introspect", true, "publish the sys.<user> introspection service (Services/Methods/Metrics)")
	routeCacheTTL := flag.Duration("route-cache", 2*time.Second, "engine directory route cache TTL (0 disables)")
	poolSize := flag.Int("conn-pool", 0, "TCP connections per peer (0 = min(4, GOMAXPROCS))")
	lockTTL := flag.Duration("lock-ttl", 0, "negotiation mark (phase-1 lock) TTL before an unresolved lock may be stolen (0 = links default)")
	commitRetry := flag.Duration("commit-retry", 0, "base backoff between commit-retry sweeper rounds for in-doubt negotiations (0 = links default)")
	commitRetryMax := flag.Int("commit-retry-max", 0, "commit-retry rounds before a journaled negotiation is expired as a permanent failure (0 = links default)")
	presumeAbort := flag.Duration("presume-abort-after", 0, "how long an in-doubt participant pins a mark while its coordinator is unreachable before presuming abort (0 = links default)")
	traceSample := flag.Float64("trace-sample", 0, "head-sample this fraction of traces (0..1; slow and in-doubt traces are always kept when tracing is on)")
	traceSlow := flag.Duration("trace-slow", 0, "retain any trace containing a span at least this slow; enables tracing when set (0 disables slow retention)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof, /traces and /replication on this address (e.g. 127.0.0.1:6060; empty disables)")
	replicaOf := flag.String("replica-of", "", "run as a WAL-shipping follower for this user (requires -data-dir and -lease-ttl; promotes to primary when the lease expires)")
	replicasFlag := flag.String("replicas", "", "comma-separated follower addresses advertised on every lease renewal (the promotion candidate set)")
	leaseTTL := flag.Duration("lease-ttl", 0, "replication lease TTL; with -data-dir the node serves as a lease-holding primary (0 = replication off)")
	wireCodec := flag.String("wire-codec", "json", "frame body codec to send: json or v3 (negotiated per connection; json stays the fallback)")
	offlineQueue := flag.Int("offline-queue", 0, "enable disconnected operation with an op queue of this capacity (writes queue locally while partitioned and sync on reconnect; 0 disables)")
	offlineOverflow := flag.String("offline-overflow", "drop-oldest", "with -offline-queue: at-capacity policy — drop-oldest or reject-new")
	syncRelevance := flag.Bool("sync-relevance", true, "with -offline-queue: serve reconnect Pulls relevance-filtered (false ships full state — baseline for comparison)")
	flag.Parse()

	codec, err := wire.ParseCodec(*wireCodec)
	if err != nil {
		log.Fatal(err)
	}
	net := transport.NewTCP(transport.WithPoolSize(*poolSize), transport.WithWireCodec(codec))
	var replStatus atomic.Value // func() (replication.Status, bool)
	replStatus.Store(func() (replication.Status, bool) { return replication.Status{}, false })
	statusFn := func() (replication.Status, bool) {
		return replStatus.Load().(func() (replication.Status, bool))()
	}

	if *replicaOf != "" {
		runFollower(net, &replStatus, statusFn, followerParams{
			user: *replicaOf, dirAddr: *dirAddr, cpAddr: *cpAddr, addr: *addr,
			dataDir: *dataDir, leaseTTL: *leaseTTL, replicas: splitList(*replicasFlag),
			debugAddr: *debugAddr, priority: *priority,
			introspect: *introspect, routeCacheTTL: *routeCacheTTL,
		})
		return
	}

	if *user == "" {
		log.Fatal("sydnode: -user is required")
	}
	sync, err := wal.ParseSyncPolicy(*fsyncPolicy)
	if err != nil {
		log.Fatalf("sydnode: %v", err)
	}

	opts := []core.Option{
		core.WithMetrics(metrics.Default()),
		core.WithRouteCache(*routeCacheTTL),
	}
	if *introspect {
		opts = append(opts, core.WithIntrospection())
	}
	if *dataDir != "" {
		opts = append(opts, core.WithDurability(*dataDir, sync, *checkpointEvery))
	}
	if *leaseTTL > 0 {
		opts = append(opts, core.WithReplication(*leaseTTL, splitList(*replicasFlag)...))
	}
	if *offlineQueue > 0 {
		policy := offline.Overflow(*offlineOverflow)
		if policy != offline.DropOldest && policy != offline.RejectNew {
			log.Fatalf("sydnode: bad -offline-overflow %q (want drop-oldest or reject-new)", *offlineOverflow)
		}
		opts = append(opts, core.WithOfflineMode(*offlineQueue, policy, *syncRelevance))
	}
	var tracer *trace.Tracer
	if *traceSample > 0 || *traceSlow > 0 {
		tracer = trace.New(*user,
			trace.WithSampleRate(*traceSample), trace.WithSlowThreshold(*traceSlow))
		opts = append(opts, core.WithTracer(tracer))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	node, err := core.Start(ctx, core.Config{
		User:             *user,
		Priority:         *priority,
		Net:              net,
		DirAddr:          *dirAddr,
		ControlPlaneAddr: *cpAddr,
		ListenAddr:       *addr,
		HeartbeatEvery:   5 * time.Second,
		ExpireEvery:      30 * time.Second,
		DirCacheTTL:      2 * time.Second,
		LockTTL:          *lockTTL,
		LinkTuning: links.Tuning{
			RetryBase:         *commitRetry,
			MaxAttempts:       *commitRetryMax,
			PresumeAbortAfter: *presumeAbort,
		},
	}, opts...)
	cancel()
	if err != nil {
		log.Fatalf("sydnode: %v", err)
	}
	if node.Repl != nil {
		repl := node.Repl
		replStatus.Store(func() (replication.Status, bool) { return repl.Status(), true })
	}
	cal, err := calendar.New(context.Background(), node, calendar.WithNotifier(notify.NewWriter(os.Stdout)))
	if err != nil {
		log.Fatalf("sydnode: calendar: %v", err)
	}
	if node.Offline != nil {
		cal.EnableSync(node.Offline)
	}
	if *statePath != "" && *dataDir != "" {
		log.Printf("sydnode: -data-dir set; ignoring legacy -state %s", *statePath)
		*statePath = ""
	}
	if *statePath != "" {
		if data, rerr := os.ReadFile(*statePath); rerr == nil {
			if err := cal.Restore(data); err != nil {
				log.Printf("sydnode: restore %s failed (%v); starting fresh", *statePath, err)
			} else {
				log.Printf("sydnode: restored device state from %s", *statePath)
			}
		}
	}
	if *debugAddr != "" {
		go serveDebug(*debugAddr, tracer, statusFn)
	}
	dirDesc := "directory " + *dirAddr
	if *cpAddr != "" {
		dirDesc = "sharded directory via control plane " + *cpAddr
	}
	role := ""
	if node.Repl != nil {
		role = ", replicated primary"
	}
	log.Printf("sydnode: %s serving on %s (%s%s)", *user, node.Addr(), dirDesc, role)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("sydnode: %s shutting down", *user)
	if *statePath != "" {
		if snap, serr := cal.Checkpoint(); serr == nil {
			if werr := os.WriteFile(*statePath, snap, 0o644); werr != nil {
				log.Printf("sydnode: save state: %v", werr)
			}
		} else {
			log.Printf("sydnode: checkpoint: %v", serr)
		}
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := node.Close(shutCtx); err != nil {
		log.Printf("sydnode: close: %v", err)
	}
}

type followerParams struct {
	user, dirAddr, cpAddr, addr, dataDir, debugAddr string
	leaseTTL                                        time.Duration
	replicas                                        []string
	priority                                        int
	introspect                                      bool
	routeCacheTTL                                   time.Duration
}

// runFollower runs the node as a warm standby: pull WAL frames, watch
// the lease, and on expiry promote into a full serving node over the
// replicated data directory.
func runFollower(net transport.Network, replStatus *atomic.Value, statusFn func() (replication.Status, bool), p followerParams) {
	if p.dataDir == "" {
		log.Fatal("sydnode: -replica-of requires -data-dir")
	}
	if p.leaseTTL <= 0 {
		log.Fatal("sydnode: -replica-of requires -lease-ttl (must match the primary's)")
	}
	var dir *directory.Client
	if p.cpAddr != "" {
		dir = directory.NewShardedClient(net, p.cpAddr)
	} else {
		dir = directory.NewClient(net, p.dirAddr)
	}
	pullEvery := p.leaseTTL / 10
	if pullEvery < 100*time.Millisecond {
		pullEvery = 100 * time.Millisecond
	}
	checkEvery := p.leaseTTL / 4
	if checkEvery < 250*time.Millisecond {
		checkEvery = 250 * time.Millisecond
	}

	promoted := make(chan *core.Node, 1)
	f, err := replication.StartFollower(context.Background(), replication.FollowerConfig{
		User:             p.user,
		Net:              net,
		Dir:              dir,
		DataDir:          p.dataDir,
		ListenAddr:       p.addr,
		LeaseTTL:         p.leaseTTL,
		ControlPlaneAddr: p.cpAddr,
		Metrics:          metrics.Default(),
		PullEvery:        pullEvery,
		LeaseCheckEvery:  checkEvery,
		Logf:             log.Printf,
		Promote: func(ctx context.Context, holder string) (string, error) {
			opts := []core.Option{
				core.WithMetrics(metrics.Default()),
				core.WithRouteCache(p.routeCacheTTL),
				core.WithDurability(p.dataDir, wal.SyncGroup, time.Minute),
			}
			if p.introspect {
				opts = append(opts, core.WithIntrospection())
			}
			node, err := core.Start(ctx, core.Config{
				User:             p.user,
				Priority:         p.priority,
				Net:              net,
				DirAddr:          p.dirAddr,
				ControlPlaneAddr: p.cpAddr,
				// The follower's replication listener on p.addr is closed
				// by the time Promote runs, so the promoted node serves at
				// the address the operator already advertised in -replicas.
				ListenAddr:     p.addr,
				HeartbeatEvery: 5 * time.Second,
				ExpireEvery:    30 * time.Second,
				DirCacheTTL:    2 * time.Second,
				LeaseTTL:       p.leaseTTL,
				LeaseHolder:    holder,
				Replicas:       p.replicas,
			}, opts...)
			if err != nil {
				return "", err
			}
			if _, err := calendar.New(ctx, node, calendar.WithNotifier(notify.NewWriter(os.Stdout))); err != nil {
				shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				_ = node.Close(shutCtx)
				return "", err
			}
			repl := node.Repl
			replStatus.Store(func() (replication.Status, bool) { return repl.Status(), true })
			promoted <- node
			log.Printf("sydnode: promoted to primary for %s, serving on %s", p.user, node.Addr())
			return node.Addr(), nil
		},
	})
	if err != nil {
		log.Fatalf("sydnode: follower: %v", err)
	}
	replStatus.Store(func() (replication.Status, bool) { return f.Status(), true })
	if p.debugAddr != "" {
		go serveDebug(p.debugAddr, nil, statusFn)
	}
	log.Printf("sydnode: follower for %s on %s (pull %v, lease check %v)", p.user, f.Addr(), pullEvery, checkEvery)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("sydnode: follower for %s shutting down", p.user)
	if err := f.Close(); err != nil {
		log.Printf("sydnode: close follower: %v", err)
	}
	select {
	case node := <-promoted:
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := node.Close(shutCtx); err != nil {
			log.Printf("sydnode: close: %v", err)
		}
	default:
	}
}
