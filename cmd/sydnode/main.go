// Command sydnode runs one SyD device node over real TCP: the kernel
// (listener, engine, events, links) plus the calendar application —
// the role an iPAQ played in the paper's prototype.
//
//	sydnode -user phil -dir 127.0.0.1:7000 -addr 127.0.0.1:7101
//
// Notifications (the §5.1 meeting e-mails) are printed to stdout.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/calendar"
	"repro/internal/core"
	"repro/internal/links"
	"repro/internal/metrics"
	"repro/internal/notify"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wal"
)

// serveDebug exposes the stock net/http/pprof handlers plus a
// plaintext dump of the node's retained traces (stitched flame trees,
// slowest first) and a JSONL export for offline analysis.
func serveDebug(addr string, tracer *trace.Tracer) {
	mux := http.DefaultServeMux // pprof registered itself here
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if tracer == nil {
			http.Error(w, "tracing is off (start with -trace-sample or -trace-slow)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, t := range trace.Stitch(tracer.Snapshot()) {
			w.Write([]byte(t.Render()))
		}
	})
	mux.HandleFunc("/traces.jsonl", func(w http.ResponseWriter, r *http.Request) {
		if tracer == nil {
			http.Error(w, "tracing is off (start with -trace-sample or -trace-slow)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = trace.WriteJSONL(w, tracer.Snapshot())
	})
	log.Printf("sydnode: debug server (pprof, /traces) on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("sydnode: debug server: %v", err)
	}
}

func main() {
	user := flag.String("user", "", "SyD user id (required)")
	dirAddr := flag.String("dir", "127.0.0.1:7000", "directory server address")
	cpAddr := flag.String("control-plane", "", "sharded-directory control plane address (overrides -dir; use syddirectory -shards N)")
	addr := flag.String("addr", "127.0.0.1:0", "address to bind")
	priority := flag.Int("priority", 0, "user priority (§6)")
	statePath := flag.String("state", "", "optional path to persist the device database across restarts (legacy whole-DB snapshot; prefer -data-dir)")
	dataDir := flag.String("data-dir", "", "durable data directory (write-ahead log + checkpoints); the device database survives crashes")
	checkpointEvery := flag.Duration("checkpoint-interval", time.Minute, "with -data-dir: snapshot the database and trim the log this often (0 = only at shutdown)")
	fsyncPolicy := flag.String("fsync", "group", "with -data-dir: fsync policy — group (batched group commit), always (fsync per commit), none")
	introspect := flag.Bool("introspect", true, "publish the sys.<user> introspection service (Services/Methods/Metrics)")
	routeCacheTTL := flag.Duration("route-cache", 2*time.Second, "engine directory route cache TTL (0 disables)")
	poolSize := flag.Int("conn-pool", 0, "TCP connections per peer (0 = min(4, GOMAXPROCS))")
	lockTTL := flag.Duration("lock-ttl", 0, "negotiation mark (phase-1 lock) TTL before an unresolved lock may be stolen (0 = links default)")
	commitRetry := flag.Duration("commit-retry", 0, "base backoff between commit-retry sweeper rounds for in-doubt negotiations (0 = links default)")
	commitRetryMax := flag.Int("commit-retry-max", 0, "commit-retry rounds before a journaled negotiation is expired as a permanent failure (0 = links default)")
	presumeAbort := flag.Duration("presume-abort-after", 0, "how long an in-doubt participant pins a mark while its coordinator is unreachable before presuming abort (0 = links default)")
	traceSample := flag.Float64("trace-sample", 0, "head-sample this fraction of traces (0..1; slow and in-doubt traces are always kept when tracing is on)")
	traceSlow := flag.Duration("trace-slow", 0, "retain any trace containing a span at least this slow; enables tracing when set (0 disables slow retention)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and a plaintext /traces dump on this address (e.g. 127.0.0.1:6060; empty disables)")
	flag.Parse()
	if *user == "" {
		log.Fatal("sydnode: -user is required")
	}
	sync, err := wal.ParseSyncPolicy(*fsyncPolicy)
	if err != nil {
		log.Fatalf("sydnode: %v", err)
	}

	opts := []core.Option{
		core.WithMetrics(metrics.Default()),
		core.WithRouteCache(*routeCacheTTL),
	}
	if *introspect {
		opts = append(opts, core.WithIntrospection())
	}
	if *dataDir != "" {
		opts = append(opts, core.WithDurability(*dataDir, sync, *checkpointEvery))
	}
	var tracer *trace.Tracer
	if *traceSample > 0 || *traceSlow > 0 {
		tracer = trace.New(*user,
			trace.WithSampleRate(*traceSample), trace.WithSlowThreshold(*traceSlow))
		opts = append(opts, core.WithTracer(tracer))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	node, err := core.Start(ctx, core.Config{
		User:             *user,
		Priority:         *priority,
		Net:              transport.NewTCP(transport.WithPoolSize(*poolSize)),
		DirAddr:          *dirAddr,
		ControlPlaneAddr: *cpAddr,
		ListenAddr:       *addr,
		HeartbeatEvery:   5 * time.Second,
		ExpireEvery:      30 * time.Second,
		DirCacheTTL:      2 * time.Second,
		LockTTL:          *lockTTL,
		LinkTuning: links.Tuning{
			RetryBase:         *commitRetry,
			MaxAttempts:       *commitRetryMax,
			PresumeAbortAfter: *presumeAbort,
		},
	}, opts...)
	cancel()
	if err != nil {
		log.Fatalf("sydnode: %v", err)
	}
	cal, err := calendar.New(context.Background(), node, calendar.WithNotifier(notify.NewWriter(os.Stdout)))
	if err != nil {
		log.Fatalf("sydnode: calendar: %v", err)
	}
	if *statePath != "" && *dataDir != "" {
		log.Printf("sydnode: -data-dir set; ignoring legacy -state %s", *statePath)
		*statePath = ""
	}
	if *statePath != "" {
		if data, rerr := os.ReadFile(*statePath); rerr == nil {
			if err := cal.Restore(data); err != nil {
				log.Printf("sydnode: restore %s failed (%v); starting fresh", *statePath, err)
			} else {
				log.Printf("sydnode: restored device state from %s", *statePath)
			}
		}
	}
	if *debugAddr != "" {
		go serveDebug(*debugAddr, tracer)
	}
	dirDesc := "directory " + *dirAddr
	if *cpAddr != "" {
		dirDesc = "sharded directory via control plane " + *cpAddr
	}
	log.Printf("sydnode: %s serving on %s (%s)", *user, node.Addr(), dirDesc)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("sydnode: %s shutting down", *user)
	if *statePath != "" {
		if snap, serr := cal.Checkpoint(); serr == nil {
			if werr := os.WriteFile(*statePath, snap, 0o644); werr != nil {
				log.Printf("sydnode: save state: %v", werr)
			}
		} else {
			log.Printf("sydnode: checkpoint: %v", serr)
		}
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := node.Close(shutCtx); err != nil {
		log.Printf("sydnode: close: %v", err)
	}
}
