// Command benchgate compares a fresh sydbench -bench-json run against
// the committed baseline (BENCH_rpc.json) and gates CI on it:
//
//	sydbench -bench-json fresh.json
//	benchgate -baseline BENCH_rpc.json -current fresh.json
//
// Per benchmark it compares ns/op and allocs/op. A drift beyond the
// soft threshold (default ±30%) is reported as a warning — CI runners
// are noisy, so soft drifts never fail the build. Only a hard
// regression (default >2x the baseline) exits non-zero. Benchmarks
// present on one side only are reported but never fatal, so adding a
// benchmark does not require touching the gate.
//
// With -scale-current the gate runs in scale mode instead, comparing a
// fresh sydbench -scale run against the committed BENCH_scale.json:
//
//	sydbench -scale all -devices 256 -scale-json fresh.json
//	benchgate -scale-baseline BENCH_scale.json -scale-current fresh.json
//
// Scale mode gates the SLO surface per scenario×topology — p95/p99
// schedule latency and the negotiation abort rate — under the same
// soft/hard policy. Scale reports are deterministic virtual-time
// measurements (wall time is excluded), so on unchanged code the two
// files agree exactly; any drift at all is a real behavior change.
//
// To refresh a baseline after an intentional change, rerun the
// matching sydbench command on a quiet machine and commit the result
// (see DESIGN.md §4 and §12).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/scale"
)

// trajectory mirrors the document sydbench -bench-json writes.
type trajectory struct {
	Date       string         `json:"date"`
	Benchmarks []bench.Result `json:"benchmarks"`
}

func load(path string) (*trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(t.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &t, nil
}

// verdict classifies one metric's drift from baseline.
type verdict int

const (
	ok verdict = iota
	soft
	hard
)

func classify(base, cur, softFrac, hardRatio float64) verdict {
	if base <= 0 {
		return ok
	}
	ratio := cur / base
	switch {
	case ratio > hardRatio:
		return hard
	case ratio > 1+softFrac || ratio < 1-softFrac:
		return soft
	default:
		return ok
	}
}

// line is one comparison row for the report.
type line struct {
	name, metric string
	base, cur    float64
	v            verdict
}

func (l line) String() string {
	tag := map[verdict]string{ok: "ok  ", soft: "WARN", hard: "FAIL"}[l.v]
	return fmt.Sprintf("%s  %-24s %-10s %12.1f -> %12.1f  (%+.1f%%)",
		tag, l.name, l.metric, l.base, l.cur, 100*(l.cur-l.base)/l.base)
}

// compare produces one row per (benchmark, metric) pair present in both
// runs, plus the names missing from either side.
func compare(baseline, current *trajectory, softFrac, hardRatio float64) (rows []line, onlyBase, onlyCur []string) {
	baseBy := make(map[string]bench.Result, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		baseBy[r.Name] = r
	}
	seen := make(map[string]bool, len(current.Benchmarks))
	for _, cur := range current.Benchmarks {
		seen[cur.Name] = true
		base, found := baseBy[cur.Name]
		if !found {
			onlyCur = append(onlyCur, cur.Name)
			continue
		}
		rows = append(rows,
			line{cur.Name, "ns/op", base.NsPerOp, cur.NsPerOp,
				classify(base.NsPerOp, cur.NsPerOp, softFrac, hardRatio)},
			line{cur.Name, "allocs/op", float64(base.AllocsPerOp), float64(cur.AllocsPerOp),
				classify(float64(base.AllocsPerOp), float64(cur.AllocsPerOp), softFrac, hardRatio)})
	}
	for _, r := range baseline.Benchmarks {
		if !seen[r.Name] {
			onlyBase = append(onlyBase, r.Name)
		}
	}
	return rows, onlyBase, onlyCur
}

// scaleFile mirrors the document sydbench -scale-json writes.
type scaleFile struct {
	Date    string          `json:"date"`
	Reports []*scale.Report `json:"reports"`
}

func loadScale(path string) (*scaleFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f scaleFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Reports) == 0 {
		return nil, fmt.Errorf("%s: no scale reports", path)
	}
	return &f, nil
}

// compareScale produces rows for the gated SLO metrics of every
// scenario×topology present in both files. Wall time is never compared
// — it is the one machine-dependent field in a scale report.
func compareScale(baseline, current *scaleFile, softFrac, hardRatio float64) (rows []line, onlyBase, onlyCur []string) {
	key := func(r *scale.Report) string { return r.Scenario + "/" + string(r.Topology) }
	baseBy := make(map[string]*scale.Report, len(baseline.Reports))
	for _, r := range baseline.Reports {
		baseBy[key(r)] = r
	}
	seen := make(map[string]bool, len(current.Reports))
	for _, cur := range current.Reports {
		k := key(cur)
		seen[k] = true
		base, found := baseBy[k]
		if !found {
			onlyCur = append(onlyCur, k)
			continue
		}
		rows = append(rows,
			line{k, "p95_ms", base.Latency.P95MS, cur.Latency.P95MS,
				classify(base.Latency.P95MS, cur.Latency.P95MS, softFrac, hardRatio)},
			line{k, "p99_ms", base.Latency.P99MS, cur.Latency.P99MS,
				classify(base.Latency.P99MS, cur.Latency.P99MS, softFrac, hardRatio)},
			line{k, "abort_rate", base.AbortRate(), cur.AbortRate(),
				classify(base.AbortRate(), cur.AbortRate(), softFrac, hardRatio)})
	}
	for _, r := range baseline.Reports {
		if !seen[key(r)] {
			onlyBase = append(onlyBase, key(r))
		}
	}
	return rows, onlyBase, onlyCur
}

func runScaleGate(baselinePath, currentPath string, softFrac, hardRatio float64) int {
	baseline, err := loadScale(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}
	current, err := loadScale(currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}
	rows, onlyBase, onlyCur := compareScale(baseline, current, softFrac, hardRatio)
	fails := 0
	for _, l := range rows {
		fmt.Println(l)
		if l.v == hard {
			fails++
		}
	}
	for _, name := range onlyBase {
		fmt.Printf("note  %-24s only in baseline (removed?)\n", name)
	}
	for _, name := range onlyCur {
		fmt.Printf("note  %-24s only in current run (new scenario; refresh the baseline)\n", name)
	}
	fmt.Printf("scale baseline %s (%s) vs current (%s): %d comparisons, %d hard regressions\n",
		baselinePath, baseline.Date, current.Date, len(rows), fails)
	if fails > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d SLO metric(s) regressed past %.1fx — if intentional, refresh %s\n",
			fails, hardRatio, baselinePath)
		return 1
	}
	return 0
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_rpc.json", "committed baseline trajectory file")
	currentPath := flag.String("current", "", "fresh sydbench -bench-json output to gate")
	scaleBaselinePath := flag.String("scale-baseline", "BENCH_scale.json", "committed scale-harness baseline file")
	scaleCurrentPath := flag.String("scale-current", "", "fresh sydbench -scale-json output to gate (enables scale mode)")
	softPct := flag.Float64("soft", 30, "warn when a metric drifts more than this percent either way")
	hardRatio := flag.Float64("hard", 2.0, "fail when a metric exceeds baseline by more than this ratio")
	flag.Parse()
	if *scaleCurrentPath != "" {
		os.Exit(runScaleGate(*scaleBaselinePath, *scaleCurrentPath, *softPct/100, *hardRatio))
	}
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current or -scale-current is required")
		os.Exit(2)
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	rows, onlyBase, onlyCur := compare(baseline, current, *softPct/100, *hardRatio)
	fails := 0
	for _, l := range rows {
		fmt.Println(l)
		if l.v == hard {
			fails++
		}
	}
	for _, name := range onlyBase {
		fmt.Printf("note  %-24s only in baseline (removed?)\n", name)
	}
	for _, name := range onlyCur {
		fmt.Printf("note  %-24s only in current run (new benchmark; refresh the baseline)\n", name)
	}
	fmt.Printf("baseline %s (%s) vs current (%s): %d comparisons, %d hard regressions\n",
		*baselinePath, baseline.Date, current.Date, len(rows), fails)
	if fails > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d metric(s) regressed past %.1fx — if intentional, refresh %s\n",
			fails, *hardRatio, *baselinePath)
		os.Exit(1)
	}
}
