package main

import (
	"testing"

	"repro/internal/bench"
)

func traj(rs ...bench.Result) *trajectory {
	return &trajectory{Date: "test", Benchmarks: rs}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		base, cur float64
		want      verdict
	}{
		{1000, 1000, ok},
		{1000, 1290, ok},   // +29% inside soft band
		{1000, 1310, soft}, // +31% soft
		{1000, 650, soft},  // -35% improvement still reported
		{1000, 2001, hard}, // >2x
		{0, 50, ok},        // zero baseline never gates
		{31, 33, ok},       // allocs jitter
		{31, 63, hard},     // allocs doubled
	}
	for _, c := range cases {
		if got := classify(c.base, c.cur, 0.30, 2.0); got != c.want {
			t.Errorf("classify(%v -> %v) = %v, want %v", c.base, c.cur, got, c.want)
		}
	}
}

func TestCompareCoversBothMetricsAndMissingNames(t *testing.T) {
	baseline := traj(
		bench.Result{Name: "A", NsPerOp: 1000, AllocsPerOp: 10},
		bench.Result{Name: "Gone", NsPerOp: 5, AllocsPerOp: 1},
	)
	current := traj(
		bench.Result{Name: "A", NsPerOp: 2500, AllocsPerOp: 10},
		bench.Result{Name: "New", NsPerOp: 7, AllocsPerOp: 2},
	)
	rows, onlyBase, onlyCur := compare(baseline, current, 0.30, 2.0)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (ns/op + allocs/op for A)", len(rows))
	}
	if rows[0].metric != "ns/op" || rows[0].v != hard {
		t.Errorf("ns/op row = %+v, want hard regression", rows[0])
	}
	if rows[1].metric != "allocs/op" || rows[1].v != ok {
		t.Errorf("allocs/op row = %+v, want ok", rows[1])
	}
	if len(onlyBase) != 1 || onlyBase[0] != "Gone" {
		t.Errorf("onlyBase = %v, want [Gone]", onlyBase)
	}
	if len(onlyCur) != 1 || onlyCur[0] != "New" {
		t.Errorf("onlyCur = %v, want [New]", onlyCur)
	}
}
